"""The assembled CDN: request handling from DNS answer to flow events.

:class:`CdnSystem` ties the catalog, data centers, placement, DNS policy and
redirection engine together and turns one user video request into the group
of TCP flows an edge monitor would observe — exactly the observable unit the
paper's session analysis works on (Section VI-A: control flows carrying
signalling vs. video flows carrying content).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cdn.catalog import Resolution, Video, VideoCatalog, hostname_for_video, shard_of
from repro.cdn.datacenter import ContentServer, DataCenter, DataCenterDirectory
from repro.cdn.redirection import RedirectionEngine, ServeDecision
from repro.cdn.selection import SelectionPolicy
from repro.cdn.store import ContentPlacement
from repro.net.dns import LocalResolver
from repro.net.latency import AccessTechnology, LatencyModel, Site

#: Flow kinds (ground truth; the trace schema does not carry them — the
#: analysis re-derives control vs. video from flow size, as the paper does).
KIND_CONTROL = "control"
KIND_VIDEO = "video"
KIND_ASSET = "asset"

#: Control-flow size range, bytes.  Below the paper's 1000-byte threshold.
_CONTROL_BYTES = (280, 950)

#: Smallest video flow emitted, bytes (an aborted playback still moves more
#: than a control exchange).
_MIN_VIDEO_BYTES = 20_000

#: Sustained client goodput by access technology, bits/s.
_GOODPUT_BPS: Dict[AccessTechnology, float] = {
    AccessTechnology.ADSL: 4.0e6,
    AccessTechnology.FTTH: 18.0e6,
    AccessTechnology.CAMPUS: 35.0e6,
    AccessTechnology.BACKBONE: 25.0e6,
    AccessTechnology.DATACENTER: 50.0e6,
}


@dataclass
class FlowEvent:
    """One observed TCP flow between a client and a content server.

    This is the pre-trace form; the monitor converts it into the flow-log
    record schema (:mod:`repro.trace.records`).

    Attributes:
        t_start: Flow start, seconds from trace start.
        t_end: Flow end, seconds from trace start.
        client_ip: Client address (integer IPv4).
        server_ip: Server address (integer IPv4).
        num_bytes: Bytes transferred server-to-client.
        video_id: The VideoID the Flash plugin requested.
        resolution: Resolution label (``"360p"``).
        kind: Ground-truth flow kind (control/video/asset).
    """

    t_start: float
    t_end: float
    client_ip: int
    server_ip: int
    num_bytes: int
    video_id: str
    resolution: str
    kind: str


@dataclass
class RequestOutcome:
    """Everything produced by one user video request.

    Attributes:
        events: Flow events in time order.
        decision: The redirection engine's hop chain (ground truth).
        dns_dc_id: Data center the DNS answer pointed at.
        served_dc_id: Data center that actually delivered the video.
    """

    events: List[FlowEvent]
    decision: ServeDecision
    dns_dc_id: str
    served_dc_id: str


class CdnSystem:
    """The simulated YouTube CDN.

    Args:
        catalog: Video catalog.
        directory: All data centers (Google, legacy, in-ISP, third-party).
        placement: Content residency tracker over the *Google-side* data
            centers (the ones DNS policies rank).
        policy: DNS-level selection policy.
        redirection: Application-layer redirection engine.
        latency: Shared delay model.
        num_shards: Content hostname shard count.
        legacy_dcs: Legacy YouTube-EU data centers serving small leftover
            assets (the AS 43515 rows of Table II).
        third_party_dcs: Other-AS server pools (CW/GBLX rows of Table II).
        legacy_probability: Chance a request also triggers a legacy asset
            flow.
        third_party_probability: Chance of a third-party asset flow.
        fragment_probability: Chance a video download is split over two
            back-to-back TCP connections (player reconnects, TCP resets) —
            the source of the paper's >2-flow sessions ("They account for
            5.18-10% of the total number of sessions", Section VI-C).
    """

    def __init__(
        self,
        catalog: VideoCatalog,
        directory: DataCenterDirectory,
        placement: ContentPlacement,
        policy: SelectionPolicy,
        redirection: RedirectionEngine,
        latency: LatencyModel,
        num_shards: int,
        legacy_dcs: Optional[Sequence[DataCenter]] = None,
        third_party_dcs: Optional[Sequence[DataCenter]] = None,
        legacy_probability: float = 0.0,
        third_party_probability: float = 0.0,
        fragment_probability: float = 0.07,
    ):
        self.catalog = catalog
        self.directory = directory
        self.placement = placement
        self.policy = policy
        self.redirection = redirection
        self.latency = latency
        self.num_shards = num_shards
        self._legacy_servers: List[ContentServer] = [
            s for dc in (legacy_dcs or []) for s in dc.servers
        ]
        self._legacy_dc_by_id = {dc.dc_id: dc for dc in (legacy_dcs or [])}
        self._third_party_servers: List[ContentServer] = [
            s for dc in (third_party_dcs or []) for s in dc.servers
        ]
        self._third_party_dc_by_id = {dc.dc_id: dc for dc in (third_party_dcs or [])}
        if not 0.0 <= legacy_probability < 1.0:
            raise ValueError("legacy_probability must be in [0, 1)")
        if not 0.0 <= third_party_probability < 1.0:
            raise ValueError("third_party_probability must be in [0, 1)")
        if not 0.0 <= fragment_probability < 1.0:
            raise ValueError("fragment_probability must be in [0, 1)")
        self._legacy_probability = legacy_probability
        self._third_party_probability = third_party_probability
        self._fragment_probability = fragment_probability

    # ------------------------------------------------------------- plumbing

    def server_site(self, server: ContentServer) -> Site:
        """Network position of any known server (Google, legacy or other)."""
        dc = self.directory.dc_of_server(server.ip)
        if dc is None:
            dc = self._legacy_dc_by_id.get(server.dc_id) or self._third_party_dc_by_id.get(
                server.dc_id
            )
        if dc is None:
            raise KeyError(f"server {server.ip_str} belongs to no known data center")
        return dc.server_site(server)

    def _control_flow(
        self,
        t: float,
        client_ip: int,
        client_site: Site,
        server: ContentServer,
        video: Video,
        resolution: Resolution,
        rng: random.Random,
    ) -> FlowEvent:
        rtt_s = self.latency.min_rtt_ms(client_site, self.server_site(server)) / 1000.0
        duration = 2.0 * rtt_s + rng.uniform(0.01, 0.08)
        return FlowEvent(
            t_start=t,
            t_end=t + duration,
            client_ip=client_ip,
            server_ip=server.ip,
            num_bytes=rng.randint(*_CONTROL_BYTES),
            video_id=video.video_id,
            resolution=resolution.label,
            kind=KIND_CONTROL,
        )

    def _video_flow(
        self,
        t: float,
        client_ip: int,
        client_site: Site,
        server: ContentServer,
        video: Video,
        resolution: Resolution,
        rng: random.Random,
        watch_fraction: Optional[float] = None,
    ) -> FlowEvent:
        if watch_fraction is None:
            # Many viewers watch to the end; the rest abandon part-way.
            watch_fraction = 1.0 if rng.random() < 0.40 else rng.uniform(0.05, 1.0)
        num_bytes = max(_MIN_VIDEO_BYTES, int(video.size_bytes(resolution) * watch_fraction))
        goodput = _GOODPUT_BPS[client_site.access] * rng.uniform(0.55, 1.1)
        duration = num_bytes * 8.0 / goodput + rng.uniform(0.1, 0.5)
        return FlowEvent(
            t_start=t,
            t_end=t + duration,
            client_ip=client_ip,
            server_ip=server.ip,
            num_bytes=num_bytes,
            video_id=video.video_id,
            resolution=resolution.label,
            kind=KIND_VIDEO,
        )

    def _fragment(self, flow: FlowEvent, rng: random.Random) -> List[FlowEvent]:
        """Split a video flow into two back-to-back connections.

        The player reconnects mid-download (same server): the trace shows
        two video flows whose gap is well under the session threshold.
        """
        split = rng.uniform(0.25, 0.75)
        duration = flow.t_end - flow.t_start
        first_end = flow.t_start + duration * split
        gap = rng.uniform(0.05, 0.4)
        first = FlowEvent(
            t_start=flow.t_start,
            t_end=first_end,
            client_ip=flow.client_ip,
            server_ip=flow.server_ip,
            num_bytes=int(flow.num_bytes * split),
            video_id=flow.video_id,
            resolution=flow.resolution,
            kind=flow.kind,
        )
        second = FlowEvent(
            t_start=first_end + gap,
            t_end=first_end + gap + duration * (1.0 - split),
            client_ip=flow.client_ip,
            server_ip=flow.server_ip,
            num_bytes=flow.num_bytes - first.num_bytes,
            video_id=flow.video_id,
            resolution=flow.resolution,
            kind=flow.kind,
        )
        return [first, second]

    def _asset_flow(
        self,
        t: float,
        client_ip: int,
        client_site: Site,
        pool: List[ContentServer],
        rng: random.Random,
    ) -> FlowEvent:
        server = pool[rng.randrange(len(pool))]
        # Small legacy videos / assets: log-normal around ~0.8 MB.
        num_bytes = int(min(6.0e6, max(3.0e4, rng.lognormvariate(math.log(8.0e5), 1.0))))
        goodput = _GOODPUT_BPS[client_site.access] * rng.uniform(0.55, 1.1)
        duration = num_bytes * 8.0 / goodput + rng.uniform(0.1, 0.4)
        video = self.catalog.by_rank(rng.randrange(len(self.catalog)))
        return FlowEvent(
            t_start=t,
            t_end=t + duration,
            client_ip=client_ip,
            server_ip=server.ip,
            num_bytes=num_bytes,
            video_id=video.video_id,
            resolution=Resolution.R240.label,
            kind=KIND_ASSET,
        )

    # --------------------------------------------------------------- request

    def handle_request(
        self,
        client_ip: int,
        client_site: Site,
        resolver: LocalResolver,
        video: Video,
        resolution: Resolution,
        t_s: float,
        rng: random.Random,
        watch_fraction: Optional[float] = None,
    ) -> RequestOutcome:
        """Serve one user video request end to end.

        Follows the paper's Section II sequence: the page hands the plugin a
        sharded content hostname, the client resolves it through its local
        resolver, contacts the answered server, and follows any
        application-layer redirects until a server delivers the video.

        Args:
            client_ip: Requesting client address.
            client_site: The client's network position.
            resolver: The client's local DNS resolver.
            video: Requested video.
            resolution: Requested resolution.
            t_s: Request time, seconds from trace start.
            rng: Workload RNG (owned by the caller/driver).
            watch_fraction: Override the sampled watch fraction (used by
                deterministic experiments).

        Returns:
            The :class:`RequestOutcome` with all flows the monitor will see.
        """
        hostname = hostname_for_video(video.video_id, self.num_shards)
        answer = resolver.query(hostname, t_s)
        first_server = self.directory.server_at(answer.ip)
        if first_server is None:
            raise LookupError(f"DNS answered an unknown server address: {answer.ip}")
        ranking = self.policy.ranking_for(resolver.resolver_id)
        shard = shard_of(video.video_id, self.num_shards)
        decision = self.redirection.route(first_server, video, ranking, t_s, shard=shard)

        events: List[FlowEvent] = []
        cursor = t_s
        for hop in decision.hops[:-1]:
            flow = self._control_flow(cursor, client_ip, client_site, hop, video, resolution, rng)
            events.append(flow)
            cursor = flow.t_end + rng.uniform(0.05, 0.35)
        video_flow = self._video_flow(
            cursor,
            client_ip,
            client_site,
            decision.serving_server,
            video,
            resolution,
            rng,
            watch_fraction,
        )
        if (
            self._fragment_probability
            and video_flow.num_bytes >= 4 * _MIN_VIDEO_BYTES
            and rng.random() < self._fragment_probability
        ):
            events.extend(self._fragment(video_flow, rng))
        else:
            events.append(video_flow)

        if self._legacy_servers and rng.random() < self._legacy_probability:
            events.append(
                self._asset_flow(
                    t_s + rng.uniform(0.0, 2.0), client_ip, client_site, self._legacy_servers, rng
                )
            )
        if self._third_party_servers and rng.random() < self._third_party_probability:
            events.append(
                self._asset_flow(
                    t_s + rng.uniform(0.0, 2.0),
                    client_ip,
                    client_site,
                    self._third_party_servers,
                    rng,
                )
            )
        return RequestOutcome(
            events=events,
            decision=decision,
            dns_dc_id=first_server.dc_id,
            served_dc_id=decision.serving_server.dc_id,
        )
