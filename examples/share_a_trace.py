#!/usr/bin/env python3
"""Sharing a trace: anonymise it, then show the analyses still work.

The paper's datasets were never released — flow logs identify customers.
Prefix-preserving anonymisation is the standard answer: a keyed bijection
on addresses that keeps every prefix relationship (and therefore every
analysis in this package) intact.  This example anonymises a simulated
trace and re-runs the session analysis on the anonymised log to show the
results are bit-identical.

Run:
    python examples/share_a_trace.py
"""

import tempfile
from pathlib import Path

from repro.core.flows import classify_flows
from repro.core.sessions import build_sessions, flows_per_session_histogram
from repro.sim.driver import run_scenario
from repro.trace import PrefixPreservingAnonymizer, read_flow_log, write_flow_log
from repro.trace.anonymize import verify_prefix_preservation


def main() -> None:
    print("Simulating a small EU1-FTTH week...")
    result = run_scenario("EU1-FTTH", scale=0.01, seed=7)
    records = result.dataset.records

    workdir = Path(tempfile.mkdtemp(prefix="repro-share-"))
    raw_path = workdir / "raw_flows.tsv"
    shared_path = workdir / "shared_flows.tsv"
    write_flow_log(records, raw_path)
    print(f"raw trace: {raw_path} ({len(records)} flows)")

    anonymizer = PrefixPreservingAnonymizer(b"keep-this-key-safe")
    anonymised = anonymizer.anonymize_records(records)
    write_flow_log(anonymised, shared_path)
    print(f"shareable trace: {shared_path}")

    sample = [r.src_ip for r in records[:10]] + [r.dst_ip for r in records[:10]]
    print(f"prefix preservation audited on a sample: "
          f"{verify_prefix_preservation(anonymizer, sample)}")

    original = read_flow_log(raw_path)
    shared = read_flow_log(shared_path)
    h_orig = flows_per_session_histogram(build_sessions(original, 1.0))
    h_shared = flows_per_session_histogram(build_sessions(shared, 1.0))
    c_orig = classify_flows(original).control_fraction
    c_shared = classify_flows(shared).control_fraction
    print("\nanalysis on raw vs anonymised trace:")
    print(f"  single-flow session share: {h_orig['1']:.4f} vs {h_shared['1']:.4f}")
    print(f"  control-flow fraction:     {c_orig:.4f} vs {c_shared:.4f}")
    assert h_orig == h_shared and c_orig == c_shared
    print("  -> identical, as prefix preservation guarantees")

    print("\nWhat the recipient cannot do: recover client identities.")
    print(f"  first client, raw:        {original[0].src_str}")
    print(f"  first client, shared:     {shared[0].src_str}")


if __name__ == "__main__":
    main()
