#!/usr/bin/env python3
"""Server geolocation survey: CBG vs. the failing baselines (Section V).

Geolocates every content server seen in a simulated trace three ways:

* the IP-to-location database (Maxmind-style) — claims everything is in
  Mountain View;
* reverse DNS — answers only for the legacy fleet;
* CBG with 215 PlanetLab-style landmarks — the method the paper adopts.

Then it clusters servers into data centers and prints Table III.

Run:
    python examples/geolocation_survey.py
"""

from repro.core.geography import render_table3
from repro.core.pipeline import StudyPipeline
from repro.geo.coords import haversine_km
from repro.geoloc.geodb import build_reference_geodb
from repro.geoloc.rdns import build_reverse_dns
from repro.sim.driver import run_all


def main() -> None:
    print("Simulating the traces...")
    results = run_all(scale=0.02, seed=7)
    pipeline = StudyPipeline(results, landmark_count=None, seed=11)  # full 215

    world = next(iter(results.values())).world
    registry = world.registry
    geodb = build_reference_geodb(registry)
    legacy = [dc for dc in world.system.directory if dc.dc_id.startswith("legacy-")]
    rdns = build_reverse_dns(legacy)

    sample_ips = sorted({ip for ips in pipeline.focus_ips.values() for ip in ips})
    print(f"\n{len(sample_ips)} distinct Google-side servers across all traces")

    claimed = {geodb.lookup(ip).name for ip in sample_ips if geodb.lookup(ip)}
    print(f"geo database verdict: all of them in {claimed} — "
          "refuted by the sub-30 ms RTTs European vantage points measure")
    ptr_hits = sum(1 for ip in sample_ips if rdns.lookup(ip) is not None)
    print(f"reverse DNS: {ptr_hits}/{len(sample_ips)} PTR records "
          "(the new infrastructure does not allow reverse lookup)")

    print("\nCalibrating CBG (215 landmarks) and geolocating...")
    server_map = pipeline.server_map
    print(f"inferred {len(server_map.clusters)} data centers:")
    for cluster in sorted(server_map.clusters, key=lambda c: -len(c))[:12]:
        print(f"  {cluster.cluster_id:28s} {len(cluster):4d} servers  "
              f"confidence ~{cluster.confidence_radius_km:4.0f} km")

    cdfs = pipeline.fig3_cdfs
    for region, cdf in cdfs.items():
        print(f"\nFigure 3 ({region}): median confidence radius "
              f"{cdf.median:.0f} km, p90 {cdf.quantile(0.9):.0f} km "
              "(paper: median 41 km, p90 320/200 km)")

    # Score CBG against the simulator's ground truth (possible only here!).
    errors = []
    for cluster in server_map.clusters:
        site = None
        for r in results.values():
            site = r.world.site_of_server_ip(cluster.server_ips[0])
            if site is not None:
                break
        if site is not None:
            errors.append(haversine_km(cluster.estimate, site.point))
    errors.sort()
    print(f"\nCBG positional error vs. ground truth: median "
          f"{errors[len(errors) // 2]:.0f} km over {len(errors)} data centers")

    print("\n" + render_table3(pipeline.table3_rows))


if __name__ == "__main__":
    main()
