#!/usr/bin/env python3
"""EU2 deep dive: adaptive DNS-level load balancing (Section VII-A).

The EU2 ISP hosts a YouTube data center inside its own network.  It is the
closest (preferred) data center for every customer — but it cannot absorb
the daytime peak, so YouTube's DNS sheds a growing share of answers to an
external Google data center as load rises.  This example regenerates
Figure 11 and prints the diurnal story hour by hour.

Run:
    python examples/dns_load_balancing.py
"""

import math

from repro.core.pipeline import StudyPipeline
from repro.sim.driver import run_all


def sparkline(values, width=56):
    """Render a coarse text sparkline for a series."""
    blocks = " .:-=+*#%@"
    finite = [v for v in values if not math.isnan(v)]
    top = max(finite) if finite else 1.0
    step = max(1, len(values) // width)
    chars = []
    for i in range(0, len(values), step):
        window = [v for v in values[i:i + step] if not math.isnan(v)]
        if not window:
            chars.append(" ")
            continue
        level = sum(window) / len(window) / top if top else 0.0
        chars.append(blocks[min(len(blocks) - 1, int(level * (len(blocks) - 1)))])
    return "".join(chars)


def main() -> None:
    print("Simulating EU2 (plus the other vantage points for the shared "
          "pipeline)...")
    results = run_all(scale=0.02, seed=7)
    pipeline = StudyPipeline(results, landmark_count=100, seed=11)

    report = pipeline.preferred_reports["EU2"]
    print(f"\nEU2 preferred data center: {report.preferred_id} "
          f"(min RTT {report.preferred.min_rtt_ms:.1f} ms, "
          f"{report.byte_share(report.preferred_id):.1%} of bytes)")
    print("It lives inside the ISP's own AS — see the Same-AS column of "
          "Table II.")

    lb = pipeline.load_balance("EU2")
    print("\nFigure 11 — one character per ~3 hours, Saturday to Friday:")
    print(f"  requests/hour    |{sparkline(lb.flows_per_hour.ys)}|")
    print(f"  local fraction   |{sparkline(lb.local_fraction.ys)}|")

    quiet, busy = lb.night_day_split()
    print(f"\nquiet hours: {quiet:.0%} of video flows served locally")
    print(f"busy hours:  {busy:.0%} served locally — the rest spills to "
          "the external data center")
    print(f"load vs. local-fraction correlation: {lb.correlation():+.2f} "
          "(strongly negative = adaptive shedding)")

    control = pipeline.load_balance("EU1-ADSL")
    q2, b2 = control.night_day_split()
    print(f"\ncontrol (EU1-ADSL, no in-ISP data center): quiet {q2:.0%} vs "
          f"busy {b2:.0%} — no such signature.")


if __name__ == "__main__":
    main()
