#!/usr/bin/env python3
"""Shared-world study: five monitors, one CDN, one week.

The paper's traces were collected *simultaneously* — five vantage points
watching the same production system.  This example runs that setup: all
five request streams interleave in global time order against one shared
CDN, so the vantage points interact (shared caches, shared capacity),
and then the standard pipeline analyses each monitor's trace.

Run:
    python examples/shared_world_study.py
"""

from repro.core.pipeline import StudyPipeline
from repro.core.report import render_study_report
from repro.sim.multistudy import build_shared_worlds, run_shared


def main() -> None:
    print("Building one shared CDN and five vantage points...")
    worlds = build_shared_worlds(scale=0.02, seed=7)
    system_ids = {id(w.system) for w in worlds.values()}
    assert len(system_ids) == 1
    print(f"  {len(worlds['EU2'].system.directory)} data centers, "
          f"{len(worlds['EU2'].system.catalog)} videos in the shared catalog")

    print("Interleaving the five request streams through one week...")
    results = run_shared(worlds)
    total = sum(r.requests for r in results.values())
    print(f"  {total} requests processed in global time order")

    print("\nCross-vantage interaction check: EU1's three PoPs share the "
          "Milan data center, so one PoP's pull-throughs warm the cache "
          "for the others (see tests/test_multistudy.py for the isolated "
          "mechanism test).")

    pipeline = StudyPipeline(results, landmark_count=120, seed=11)
    print("\nHeadline results from the shared week:")
    for name in pipeline.dataset_names:
        report = pipeline.preferred_reports[name]
        print(f"  {name:12s} preferred={report.preferred_id:24s} "
              f"share={report.byte_share(report.preferred_id):6.1%} "
              f"non-preferred={pipeline.nonpreferred_fraction(name):6.1%}")

    print("\n(For the full report: "
          "python -m repro study --shared --full)")


if __name__ == "__main__":
    main()
