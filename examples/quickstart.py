#!/usr/bin/env python3
"""Quickstart: simulate one monitored week and run the core analyses.

Simulates the EU1-ADSL vantage point at a small scale, collects the
Tstat-like flow log, and walks the paper's first analysis steps: flow
classification (Section VI-A), video sessions, and a first look at where
the traffic comes from.

Run:
    python examples/quickstart.py
"""

from repro.core.flows import classify_flows, detect_size_threshold
from repro.core.sessions import build_sessions, flows_per_session_histogram, multi_flow_fraction
from repro.core.summary import summarize
from repro.sim.driver import run_scenario


def main() -> None:
    print("Simulating one week at the EU1-ADSL vantage point (2% scale)...")
    result = run_scenario("EU1-ADSL", scale=0.02, seed=7)
    dataset = result.dataset

    summary = summarize(dataset)
    print(f"\ncollected {summary.flows} YouTube flows "
          f"({summary.volume_gb:.1f} GB) from {summary.num_clients} clients "
          f"to {summary.num_servers} servers")

    classes = classify_flows(dataset.records)
    print(f"\nflow classification at the 1000-byte threshold:")
    print(f"  control flows: {len(classes.control):6d} ({classes.control_fraction:.1%})")
    print(f"  video flows:   {len(classes.video):6d}")
    print(f"  data-derived threshold estimate: "
          f"{detect_size_threshold(dataset.records)} bytes")

    sessions = build_sessions(dataset.records, gap_s=1.0)
    histogram = flows_per_session_histogram(sessions)
    print(f"\n{len(sessions)} video sessions at T = 1 s:")
    for bucket in ("1", "2", "3", "4", ">9"):
        print(f"  {bucket:>2s} flows: {histogram[bucket]:.1%}")
    print(f"  sessions with redirections (>= 2 flows): "
          f"{multi_flow_fraction(sessions):.1%}")

    print("\nground-truth request routing (simulator side, for orientation):")
    for dc_id, count in result.served_dc_counts.most_common(5):
        print(f"  {dc_id:24s} served {count:6d} requests")
    print("\nNext: examples/campus_trace_study.py runs the paper's full "
          "measurement pipeline, which re-infers all of this from the trace "
          "alone.")


if __name__ == "__main__":
    main()
