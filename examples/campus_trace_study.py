#!/usr/bin/env python3
"""The full five-dataset study: the paper's pipeline end to end.

Simulates all five monitored networks (Table I), then runs the complete
measurement methodology — whois (Table II), CBG geolocation and data-center
clustering (Table III, Figure 3), preferred-data-center analysis
(Figures 7-9), and session-pattern cause attribution (Figure 10).

Run:
    python examples/campus_trace_study.py
"""

from repro.core.asmap import render_table2
from repro.core.geography import render_table3
from repro.core.nonpreferred import SessionPattern
from repro.core.pipeline import StudyPipeline
from repro.core.summary import render_table1
from repro.sim.driver import run_all


def main() -> None:
    print("Simulating the five monitored networks (one week, 2% scale)...")
    results = run_all(scale=0.02, seed=7)
    pipeline = StudyPipeline(results, landmark_count=120, seed=11)

    print("\n" + render_table1(pipeline.summaries.values()))
    print("\n" + render_table2(pipeline.as_breakdowns.values()))

    print("\nCalibrating CBG and clustering servers into data centers...")
    print(f"  inferred {len(pipeline.server_map.clusters)} data centers "
          f"from {sum(len(c) for c in pipeline.server_map.clusters)} servers")
    print("\n" + render_table3(pipeline.table3_rows))

    print("\nPreferred data centers (Figure 7):")
    for name in pipeline.dataset_names:
        report = pipeline.preferred_reports[name]
        share = report.byte_share(report.preferred_id)
        print(f"  {name:12s} -> {report.preferred_id:24s} "
              f"{share:6.1%} of bytes at {report.preferred.min_rtt_ms:5.1f} ms")

    print("\nNon-preferred accesses (Figure 9) and their causes:")
    for name in pipeline.dataset_names:
        fraction = pipeline.nonpreferred_fraction(name)
        causes = pipeline.dns_vs_redirection(name)
        print(f"  {name:12s} {fraction:6.1%} non-preferred "
              f"(DNS {causes['dns']:.0%} / redirection {causes['redirection']:.0%})")

    print("\nTwo-flow session patterns (Figure 10b):")
    for name in pipeline.dataset_names:
        patterns = pipeline.two_flow_breakdown(name)
        cells = "  ".join(
            f"{p.value.replace('preferred', 'P').replace('non-P', 'N')}: {patterns[p]:.0%}"
            for p in SessionPattern
        )
        print(f"  {name:12s} {cells}")

    print("\nUS-Campus geography check (Figure 8): the five closest data "
          f"centers carry {pipeline.preferred_reports['US-Campus'].closest_k_share(5):.1%} "
          "of the bytes — proximity is not the selection criterion.")


if __name__ == "__main__":
    main()
