#!/usr/bin/env python3
"""What-if analysis for ISP capacity planning.

The paper's introduction: "Such insights can aid ISPs in their capacity
planning decisions ... A better understanding could enable researchers to
conduct what-if analysis, and explore how changes in video popularity
distributions, or changes to the YouTube infrastructure design can impact
ISP traffic patterns, as well as user performance."

This example runs the standard variant library against EU1-ADSL and reads
the table the way a planner would.

Run:
    python examples/whatif_capacity_planning.py
"""

from repro.whatif import compare_variants, render_comparison, standard_variants


def main() -> None:
    print("Simulating EU1-ADSL under 8 infrastructure/workload variants...")
    report = compare_variants("EU1-ADSL", standard_variants(), scale=0.01, seed=7)
    print()
    print(render_comparison(report))

    base = report.baseline
    old = report.row("old-policy")
    flash = report.row("flash-crowd")
    sparse = report.row("sparse-replication")

    print("\nReading the table:")
    print(f"* Rolling back to the pre-Google policy would multiply the "
          f"median serving RTT by "
          f"{old.median_serving_rtt_ms / base.median_serving_rtt_ms:.1f}x and "
          f"scatter traffic over {old.distinct_dcs} data centers instead of "
          f"{base.distinct_dcs} — the peering-capacity nightmare the "
          f"preferred-DC design avoids.")
    print(f"* A flash crowd ({'flash-crowd'}) raises overload redirects from "
          f"{base.overload_rate:.3f} to {flash.overload_rate:.3f} per request: "
          f"hot-spot shedding, not DNS, absorbs demand spikes.")
    print(f"* Thin tail replication ({'sparse-replication'}) triples content "
          f"misses ({base.miss_rate:.3f} -> {sparse.miss_rate:.3f}): first "
          f"plays of cold videos arrive from far-away origins until the "
          f"pull-through warms the edge.")
    print(f"* User impact stays bounded in every variant except the policy "
          f"rollback: startup p90 moves from {base.p90_startup_s:.2f}s to "
          f"{old.p90_startup_s:.2f}s there.")


if __name__ == "__main__":
    main()
