#!/usr/bin/env python3
"""Trace characterisation: the related-work lens (Section VIII).

Before the paper dissects *server selection*, a generation of studies
(Gill et al. IMC'07, Zink et al. 2009) characterised YouTube traffic itself:
video popularity, flow sizes, heavy users, day/night rhythm.  This example
runs those characterisations on a simulated trace — they double as sanity
checks that the generated workload looks like a real edge trace — and puts
bootstrap error bars on the headline fraction.

Run:
    python examples/trace_characterization.py
"""

from repro.core.characterize import (
    characterize,
    client_volume_cdf,
    hourly_volume_series,
    popularity_cdf,
)
from repro.core.confidence import fraction_interval
from repro.core.flows import classify_flows
from repro.core.nonpreferred import video_flow_preference
from repro.core.pipeline import StudyPipeline
from repro.sim.driver import run_all


def main() -> None:
    print("Simulating the five traces...")
    results = run_all(scale=0.02, seed=7)

    print("\nPer-trace characterisation:")
    header = (f"{'dataset':12s} {'videos':>7s} {'once%':>6s} {'top1%-share':>11s} "
              f"{'median-MB':>9s} {'peak/trough':>11s}")
    print(header)
    for name, result in results.items():
        profile = characterize(result.dataset)
        print(f"{name:12s} {profile.distinct_videos:7d} "
              f"{profile.singleton_video_fraction:6.1%} "
              f"{profile.top_percentile_share:11.1%} "
              f"{profile.median_flow_bytes / 1e6:9.1f} "
              f"{profile.peak_to_trough:11.1f}")

    name = "EU1-ADSL"
    dataset = results[name].dataset
    print(f"\nDeep dive: {name}")
    pop = popularity_cdf(dataset.records)
    print(f"  per-video requests: median {pop.median:.0f}, "
          f"p99 {pop.quantile(0.99):.0f}, max {pop.max:.0f}")
    clients = client_volume_cdf(dataset.records)
    print(f"  per-client volume: median {clients.median / 1e6:.0f} MB, "
          f"p95 {clients.quantile(0.95) / 1e6:.0f} MB "
          f"(the classic heavy-user skew)")
    classes = classify_flows(dataset.records)
    print(f"  control flows: {classes.control_fraction:.1%} of flows")
    hourly = hourly_volume_series(dataset)
    print(f"  busiest hour: {hourly.max_y():.0f} flows "
          f"(hour {hourly.xs[hourly.ys.index(hourly.max_y())]:.0f})")

    print("\nError bars on the headline fraction (bootstrap, 95%):")
    pipeline = StudyPipeline(results, landmark_count=100, seed=11)
    split = video_flow_preference(
        pipeline.focus_records[name],
        pipeline.preferred_reports[name],
        pipeline.server_map,
    )
    flags = [False] * len(split[True]) + [True] * len(split[False])
    interval = fraction_interval(flags, resamples=300, seed=5)
    print(f"  non-preferred video-flow fraction at {name}: {interval}")


if __name__ == "__main__":
    main()
