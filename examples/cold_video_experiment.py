#!/usr/bin/env python3
"""The PlanetLab cold-video experiment (Section VII-C, Figures 17-18).

Uploads a fresh test video (it exists only at its origin data center),
then downloads it from 45 nodes around the world every 30 minutes for 12
hours, measuring the RTT to whichever server actually delivers it.  The
first fetch comes from far away; the pull-through cache makes every later
fetch local.

Run:
    python examples/cold_video_experiment.py
"""

from repro.active.testvideo import TestVideoExperiment
from repro.sim.scenarios import PAPER_SCENARIOS, build_world


def main() -> None:
    print("Building the CDN world...")
    world = build_world(PAPER_SCENARIOS["EU1-ADSL"], scale=0.002, seed=7)
    experiment = TestVideoExperiment(world, num_nodes=45, seed=5)

    preferred = {experiment.preferred_dc_of(n) for n in experiment.nodes}
    print(f"45 PlanetLab nodes with {len(preferred)} distinct preferred "
          "data centers")

    print("Uploading the test video and probing every 30 min for 12 h...")
    report = experiment.run()
    print(f"test video {report.video_id} originated at: "
          f"{', '.join(report.origin_dcs)}")

    exemplar = report.most_improved()
    print(f"\nFigure 17 — RTT samples from {exemplar.node.name}:")
    row = " ".join(f"{r:6.1f}" for r in exemplar.rtts_ms[:12])
    print(f"  first 12 samples (ms): {row}")
    print(f"  first fetch served by {exemplar.serving_dcs[0]}, later "
          f"fetches by {exemplar.serving_dcs[1]}")
    print(f"  RTT1/RTT2 = {exemplar.first_to_second_ratio:.1f}")

    cdf = report.ratio_cdf()
    print("\nFigure 18 — CDF of RTT1/RTT2 over all 45 nodes:")
    for threshold in (1.0, 1.2, 2.0, 5.0, 10.0, 50.0):
        above = 1.0 - cdf.fraction_below(threshold)
        print(f"  ratio > {threshold:5.1f}: {above:5.1%} of nodes")
    print("\nPaper: > 40% of nodes improved (ratio > 1); ~20% improved "
          "more than 10x.  Nodes with ratio ~= 1 shared a preferred data "
          "center with an earlier fetcher, so their first fetch was "
          "already local.")


if __name__ == "__main__":
    main()
