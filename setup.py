"""Setup shim for offline editable installs (`python setup.py develop`)."""

from setuptools import setup

setup()
