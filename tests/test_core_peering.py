"""Tests for the peering-traffic analysis."""

import pytest

from repro.core.peering import AsTraffic, analyze_peering
from repro.net.asn import GOOGLE_ASN, YOUTUBE_EU_ASN


class TestAsTraffic:
    def test_aggregates(self):
        row = AsTraffic(asn=1, name="x", hourly_bytes=[100, 300, 200])
        assert row.total_bytes == 600
        assert row.peak_hour_bytes == 300

    def test_p95_is_billing_percentile(self):
        # 100 hours: 95 quiet at ~1 GB, 5 bursty at 100 GB.
        hours = [1_000_000_000] * 95 + [100_000_000_000] * 5
        row = AsTraffic(asn=1, name="x", hourly_bytes=hours)
        # The p95 hour is still a quiet one: bursts above the 95th sample
        # are free under burstable billing.
        assert row.p95_mbps() == pytest.approx(1e9 * 8 / 3600 / 1e6, rel=0.01)

    def test_p95_requires_hours(self):
        with pytest.raises(ValueError):
            AsTraffic(asn=1, name="x", hourly_bytes=[]).p95_mbps()

    def test_mbps_series_length(self):
        row = AsTraffic(asn=1, name="x", hourly_bytes=[3600 * 1_000_000 // 8] * 4)
        series = row.mbps_series()
        assert len(series) == 4
        assert series.ys[0] == pytest.approx(1.0)  # 1 Mbps


class TestAnalyzePeering:
    def test_google_dominates_everywhere(self, study_results):
        for name, result in study_results.items():
            report = analyze_peering(result.dataset, result.world.registry)
            assert report.per_as[0].asn == GOOGLE_ASN, name
            google_share = report.per_as[0].total_bytes / report.total_bytes
            if name == "EU2":
                assert google_share < 0.8
            else:
                assert google_share > 0.95

    def test_eu2_on_net_share(self, eu2):
        """The in-ISP data center keeps ~40 % of bytes off the peering edge."""
        report = analyze_peering(eu2.dataset, eu2.world.registry)
        assert 0.2 < report.on_net_fraction < 0.6
        host_row = report.row(eu2.dataset.vantage.asn)
        assert host_row.total_bytes == report.on_net_bytes

    def test_other_vantages_all_off_net(self, eu1_adsl):
        report = analyze_peering(eu1_adsl.dataset, eu1_adsl.world.registry)
        assert report.on_net_fraction == 0.0
        with pytest.raises(KeyError):
            report.row(eu1_adsl.dataset.vantage.asn)

    def test_legacy_as_present_but_small(self, eu1_adsl):
        report = analyze_peering(eu1_adsl.dataset, eu1_adsl.world.registry)
        legacy = report.row(YOUTUBE_EU_ASN)
        assert 0 < legacy.total_bytes < 0.05 * report.total_bytes

    def test_diurnal_visible_in_billing_gap(self, eu1_adsl):
        """Peak hour well above the p95 billing rate implies burstiness the
        ISP does not pay for — the diurnal pattern in money terms."""
        report = analyze_peering(eu1_adsl.dataset, eu1_adsl.world.registry)
        google = report.row(GOOGLE_ASN)
        peak_mbps = google.peak_hour_bytes * 8 / 3600 / 1e6
        assert peak_mbps > google.p95_mbps()

    def test_render(self, eu2):
        report = analyze_peering(eu2.dataset, eu2.world.registry)
        text = report.render()
        assert "PEERING INGRESS" in text
        assert "AS15169" in text
