"""Unit and property tests for spherical geometry primitives."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.coords import (
    EARTH_RADIUS_KM,
    GeoPoint,
    destination_point,
    haversine_km,
    haversine_km_many,
    initial_bearing_deg,
)

lat_strategy = st.floats(min_value=-89.0, max_value=89.0)
lon_strategy = st.floats(min_value=-179.9, max_value=179.9)


def points(draw_lat, draw_lon):
    return GeoPoint(draw_lat, draw_lon)


class TestGeoPoint:
    def test_valid_construction(self):
        p = GeoPoint(45.07, 7.687)
        assert p.lat == 45.07
        assert p.lon == 7.687

    def test_rejects_bad_latitude(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(ValueError):
            GeoPoint(-90.5, 0.0)

    def test_rejects_bad_longitude(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, 181.0)

    def test_str_hemispheres(self):
        assert "N" in str(GeoPoint(10.0, 20.0))
        assert "S" in str(GeoPoint(-10.0, 20.0))
        assert "W" in str(GeoPoint(10.0, -20.0))

    def test_distance_method_matches_function(self):
        a = GeoPoint(40.0, -86.0)
        b = GeoPoint(41.9, -87.6)
        assert a.distance_km(b) == haversine_km(a, b)


class TestHaversine:
    def test_zero_distance(self):
        p = GeoPoint(45.0, 7.0)
        assert haversine_km(p, p) == 0.0

    def test_known_distance_turin_milan(self):
        turin = GeoPoint(45.070, 7.687)
        milan = GeoPoint(45.464, 9.190)
        d = haversine_km(turin, milan)
        assert 115 <= d <= 135  # ~125 km

    def test_known_distance_transatlantic(self):
        ny = GeoPoint(40.713, -74.006)
        london = GeoPoint(51.507, -0.128)
        d = haversine_km(ny, london)
        assert 5400 <= d <= 5700  # ~5570 km

    def test_antipodal_bound(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 180.0)
        d = haversine_km(a, b)
        assert d == pytest.approx(math.pi * EARTH_RADIUS_KM, rel=1e-6)

    @given(lat_strategy, lon_strategy, lat_strategy, lon_strategy)
    @settings(max_examples=80)
    def test_symmetry(self, lat1, lon1, lat2, lon2):
        a, b = GeoPoint(lat1, lon1), GeoPoint(lat2, lon2)
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a), abs=1e-9)

    @given(lat_strategy, lon_strategy, lat_strategy, lon_strategy)
    @settings(max_examples=80)
    def test_non_negative_and_bounded(self, lat1, lon1, lat2, lon2):
        d = haversine_km(GeoPoint(lat1, lon1), GeoPoint(lat2, lon2))
        assert 0.0 <= d <= math.pi * EARTH_RADIUS_KM + 1e-6

    @given(
        lat_strategy, lon_strategy, lat_strategy, lon_strategy,
        lat_strategy, lon_strategy,
    )
    @settings(max_examples=60)
    def test_triangle_inequality(self, lat1, lon1, lat2, lon2, lat3, lon3):
        a = GeoPoint(lat1, lon1)
        b = GeoPoint(lat2, lon2)
        c = GeoPoint(lat3, lon3)
        assert haversine_km(a, c) <= haversine_km(a, b) + haversine_km(b, c) + 1e-6


class TestVectorised:
    def test_matches_scalar(self):
        origin = GeoPoint(45.0, 7.0)
        lats = np.array([41.9, 52.37, -33.87])
        lons = np.array([12.5, 4.9, 151.2])
        many = haversine_km_many(origin, lats, lons)
        for i in range(3):
            single = haversine_km(origin, GeoPoint(float(lats[i]), float(lons[i])))
            assert many[i] == pytest.approx(single, rel=1e-9)

    def test_empty_arrays(self):
        origin = GeoPoint(0.0, 0.0)
        out = haversine_km_many(origin, np.array([]), np.array([]))
        assert out.shape == (0,)


class TestDestinationPoint:
    @given(lat_strategy, lon_strategy, st.floats(min_value=0, max_value=359.9),
           st.floats(min_value=0.1, max_value=5000))
    @settings(max_examples=80)
    def test_distance_roundtrip(self, lat, lon, bearing, distance):
        origin = GeoPoint(lat, lon)
        dest = destination_point(origin, bearing, distance)
        assert haversine_km(origin, dest) == pytest.approx(distance, rel=1e-3)

    def test_zero_distance_is_identity(self):
        origin = GeoPoint(45.0, 7.0)
        dest = destination_point(origin, 123.0, 0.0)
        assert haversine_km(origin, dest) < 1e-9

    def test_due_north(self):
        origin = GeoPoint(0.0, 0.0)
        dest = destination_point(origin, 0.0, 111.0)
        assert dest.lat == pytest.approx(1.0, abs=0.01)
        assert dest.lon == pytest.approx(0.0, abs=1e-6)


class TestBearing:
    def test_due_east(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 10.0)
        assert initial_bearing_deg(a, b) == pytest.approx(90.0, abs=0.1)

    def test_due_north(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(10.0, 0.0)
        assert initial_bearing_deg(a, b) == pytest.approx(0.0, abs=0.1)

    def test_range(self):
        a = GeoPoint(45.0, 7.0)
        b = GeoPoint(-20.0, -60.0)
        assert 0.0 <= initial_bearing_deg(a, b) < 360.0
