"""Property-based invariants of the scenario-spec subsystem (hypothesis).

Randomised checks of the contracts the spec layer advertises:

- A :class:`~repro.spec.model.Spec` survives a JSON round-trip exactly.
- Composition of deltas over *disjoint* sets/pars is associative.
- A violated ``require`` always raises
  :class:`~repro.spec.info.SpecError`, never applies partially.
- :class:`~repro.spec.info.ScenarioInfo` canonicalisation is insensitive
  to element/par construction order (equality and cache fingerprints).
- Cache keys are *sensitive* where they must be (a changed axis value is
  a new key) and *insensitive* where they must be (a re-serialised spec
  keys identically).

The whole module skips cleanly when hypothesis is not installed.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.artifacts.keys import stage_key  # noqa: E402
from repro.sim.scenarios import PAPER_SCENARIOS  # noqa: E402
from repro.spec import (  # noqa: E402
    ScenarioInfo,
    Spec,
    SpecError,
    apply_to_scenario,
    describe,
    par_delta,
)

# ----------------------------------------------------------------- strategies

_DC_NAMES = st.sampled_from(["dc-a", "dc-b", "dc-c", "dc-d", "dc-e", "dc-f"])
_SUBNET_NAMES = st.sampled_from(["Net-6", "Net-7", "Net-8", "Net-9"])
_FINITE = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                    allow_infinity=False).map(lambda v: v + 0.0)  # fold -0.0

#: Numeric ScenarioSpec pars safe to assign with arbitrary positive floats.
_FLOAT_PARS = ("zipf_alpha", "requests_per_day", "egress_ms",
               "spill_probability", "featured_share")

_detours = st.lists(
    st.tuples(_DC_NAMES, _FINITE), max_size=4,
    unique_by=lambda pair: pair[0],
)
_subnets = st.lists(
    st.tuples(_SUBNET_NAMES, _FINITE, st.booleans()), max_size=3,
    unique_by=lambda element: element[0],
)
_pars = st.dictionaries(st.sampled_from(_FLOAT_PARS), _FINITE, max_size=3)


def _info(detours, subnets, pars):
    return ScenarioInfo(sets={"detour": detours, "subnet": subnets}, pars=pars)


@st.composite
def specs(draw):
    """Valid add-only specs (the grid/variant delta shape)."""
    return Spec(
        add=_info(draw(_detours), draw(_subnets), draw(_pars)),
        require=ScenarioInfo(pars=draw(_pars)),
    )


@st.composite
def disjoint_spec_triples(draw):
    """Three add-only specs over pairwise-disjoint detour/par names."""
    detours = draw(st.lists(st.tuples(_DC_NAMES, _FINITE), max_size=6,
                            unique_by=lambda pair: pair[0]))
    pars = draw(_pars)
    splits = [draw(st.integers(0, 3)) for _ in range(len(detours))]
    par_splits = {name: draw(st.integers(0, 3)) for name in pars}
    parts = []
    for bucket in range(3):
        part_detours = [d for d, s in zip(detours, splits) if s == bucket]
        part_pars = {n: v for n, v in pars.items() if par_splits[n] == bucket}
        parts.append(Spec(add=ScenarioInfo(sets={"detour": part_detours},
                                           pars=part_pars)))
    return tuple(parts)


# ------------------------------------------------------------------ round-trip

@given(spec=specs())
@settings(max_examples=60, deadline=None)
def test_spec_json_round_trip(spec):
    assert Spec.from_json(spec.to_json()) == spec
    assert Spec.from_json(spec.to_json(indent=2)) == spec


# ----------------------------------------------------------------- composition

@given(triple=disjoint_spec_triples())
@settings(max_examples=60, deadline=None)
def test_composition_associative_on_disjoint_deltas(triple):
    a, b, c = triple
    assert a.compose(b).compose(c) == a.compose(b.compose(c))


@given(spec=specs())
@settings(max_examples=60, deadline=None)
def test_empty_spec_is_composition_identity(spec):
    identity = Spec()
    assert identity.compose(spec) == spec
    assert spec.compose(identity) == spec


# --------------------------------------------------------------------- require

@given(value=_FINITE)
@settings(max_examples=40, deadline=None)
def test_require_violation_always_raises(value):
    base = PAPER_SCENARIOS["EU1-FTTH"]
    actual = base.zipf_alpha
    spec = Spec(require=ScenarioInfo(pars={"zipf_alpha": value}))
    if value == actual:
        scenario, _ = apply_to_scenario(base, spec)
        assert scenario is base
    else:
        with pytest.raises(SpecError):
            apply_to_scenario(base, spec)


# ------------------------------------------------------------- canonical order

@given(detours=_detours, subnets=_subnets, pars=_pars, seed=st.randoms())
@settings(max_examples=60, deadline=None)
def test_canonicalization_order_insensitive(detours, subnets, pars, seed):
    shuffled_detours = list(detours)
    shuffled_subnets = list(subnets)
    seed.shuffle(shuffled_detours)
    seed.shuffle(shuffled_subnets)
    shuffled_pars = dict(
        sorted(pars.items(), key=lambda item: seed.random())
    )
    a = _info(detours, subnets, pars)
    b = _info(shuffled_detours, shuffled_subnets, shuffled_pars)
    assert a == b
    assert a.cache_fingerprint() == b.cache_fingerprint()
    assert stage_key("test/stage", a) == stage_key("test/stage", b)


# ------------------------------------------------------------------ cache keys

@given(spec=specs())
@settings(max_examples=60, deadline=None)
def test_reserialized_spec_keys_identically(spec):
    reparsed = Spec.from_json(spec.to_json())
    assert stage_key("test/stage", spec) == stage_key("test/stage", reparsed)


@given(name=st.sampled_from(_FLOAT_PARS), a=_FINITE, b=_FINITE)
@settings(max_examples=60, deadline=None)
def test_changed_par_value_changes_key(name, a, b):
    key_a = stage_key("test/stage", par_delta(**{name: a}))
    key_b = stage_key("test/stage", par_delta(**{name: b}))
    assert (key_a == key_b) == (float(a) == float(b))


@given(a=_FINITE, b=_FINITE)
@settings(max_examples=30, deadline=None)
def test_applied_scenario_key_tracks_the_delta(a, b):
    """Applying different deltas to one base yields different world keys."""
    base = PAPER_SCENARIOS["EU1-FTTH"]
    sa, _ = apply_to_scenario(base, par_delta(zipf_alpha=a))
    sb, _ = apply_to_scenario(base, par_delta(zipf_alpha=b))
    keys_equal = stage_key("sim/run_week", sa) == stage_key("sim/run_week", sb)
    assert keys_equal == (float(a) == float(b))


@given(spec=specs())
@settings(max_examples=40, deadline=None)
def test_apply_then_describe_contains_assigned_pars(spec):
    """Every par a delta assigns is visible in the result's description."""
    base = PAPER_SCENARIOS["EU1-FTTH"]
    scenario, policy = apply_to_scenario(base, Spec(add=spec.add))
    view = describe(scenario, policy=policy).pars_dict
    for name, value in spec.add.pars:
        assert view[name] == pytest.approx(value)
