"""Artifact store and cache-key derivation unit tests."""

from __future__ import annotations

import dataclasses
import enum
import json
import pickle

import pytest

from repro.artifacts.keys import (
    CODE_VERSION,
    CanonicalizationError,
    canonicalize,
    code_version,
    stage_key,
)
from repro.artifacts.store import (
    ArtifactStore,
    cache_enabled,
    cache_root,
    default_store,
    reset_default_store,
)


class Colour(enum.Enum):
    RED = 1
    BLUE = 2


@dataclasses.dataclass(frozen=True)
class Point:
    x: int
    y: int


class Fingerprinted:
    """Identity is the fingerprint, not the (unpicklable) internals."""

    def __init__(self, ident):
        self.ident = ident
        self.junk = lambda: None  # uncanonicalisable on purpose

    def cache_fingerprint(self):
        return {"ident": self.ident}


# ---------------------------------------------------------------------- keys


class TestCanonicalize:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "x"):
            assert canonicalize(value) == value

    def test_enum_by_class_and_member(self):
        assert canonicalize(Colour.RED) == {"__enum__": "Colour", "member": "RED"}
        assert canonicalize(Colour.RED) != canonicalize(Colour.BLUE)

    def test_dict_is_order_insensitive(self):
        assert canonicalize({"a": 1, "b": 2}) == canonicalize({"b": 2, "a": 1})

    def test_set_is_order_insensitive(self):
        assert canonicalize({3, 1, 2}) == canonicalize({2, 3, 1})

    def test_dataclass_carries_type_name(self):
        form = canonicalize(Point(1, 2))
        assert form["__dataclass__"] == "Point"
        assert form["fields"]["x"] == 1

    def test_fingerprint_beats_structural_form(self):
        # A fingerprinted dataclass must use its fingerprint, not its fields.
        @dataclasses.dataclass
        class Job:
            order: tuple

            def cache_fingerprint(self):
                return {"order": list(self.order)}

        form = canonicalize(Job(("b", "a")))
        assert form["__fingerprint__"] == "Job"
        assert form["value"]["__map__"][0][1] == ["b", "a"]

    def test_unknown_types_raise(self):
        with pytest.raises(CanonicalizationError):
            canonicalize(object())

    def test_bytes_canonicalise_by_hex(self):
        assert canonicalize(b"\x00\xff") == {"__bytes__": "00ff"}

    def test_canonical_form_is_json_serialisable(self):
        form = canonicalize({"p": Point(1, 2), "c": Colour.BLUE,
                             "f": Fingerprinted([1, 2])})
        json.dumps(form, sort_keys=True)


class TestStageKey:
    def test_stable_and_hex(self):
        key = stage_key("sim/run_week", {"seed": 7})
        assert key == stage_key("sim/run_week", {"seed": 7})
        assert len(key) == 64
        int(key, 16)

    def test_stage_name_differentiates(self):
        config = {"seed": 7}
        assert stage_key("a", config) != stage_key("b", config)

    def test_version_differentiates(self):
        config = {"seed": 7}
        assert (stage_key("s", config, version="1")
                != stage_key("s", config, version="2"))

    def test_env_version_override(self, monkeypatch):
        baseline = stage_key("s", {})
        monkeypatch.setenv("REPRO_CODE_VERSION", CODE_VERSION + "-next")
        assert code_version() == CODE_VERSION + "-next"
        assert stage_key("s", {}) != baseline


# --------------------------------------------------------------------- store


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


KEY = "ab" + "0" * 62


class TestArtifactStore:
    def test_roundtrip(self, store):
        assert not store.has(KEY)
        store.put(KEY, {"rows": [1, 2, 3]}, stage="s")
        assert store.has(KEY)
        assert store.get(KEY, stage="s") == {"rows": [1, 2, 3]}

    def test_miss_returns_default(self, store):
        sentinel = object()
        assert store.get(KEY, sentinel, stage="s") is sentinel
        assert store.stats.misses == 1

    def test_sharded_layout(self, store):
        path = store.object_path(KEY)
        assert path.parent.name == "ab"
        assert path.suffix == ".pkl"

    def test_corrupt_object_is_a_miss_and_healed(self, store):
        path = store.object_path(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert store.get(KEY, None, stage="s") is None
        assert not path.exists()
        store.put(KEY, 42, stage="s")
        assert store.get(KEY, stage="s") == 42

    def test_no_temp_files_left_behind(self, store):
        store.put(KEY, list(range(100)), stage="s")
        leftovers = list(store.objects_dir.rglob("*.tmp"))
        assert leftovers == []

    def test_unpicklable_value_writes_nothing(self, store):
        with pytest.raises(Exception):
            store.put(KEY, lambda: None, stage="s")
        assert not store.has(KEY)

    def test_get_or_compute(self, store):
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert store.get_or_compute(KEY, compute, stage="s") == "value"
        assert store.get_or_compute(KEY, compute, stage="s") == "value"
        assert len(calls) == 1

    def test_session_counters(self, store):
        store.get(KEY, None, stage="s")
        size = store.put(KEY, "x" * 100, stage="s")
        store.get(KEY, None, stage="s")
        assert store.stats.hits == 1
        assert store.stats.misses == 1
        assert store.stats.puts == 1
        assert store.stats.bytes_written == size
        assert store.stats.bytes_read == size

    def test_ledger_survives_instances(self, store):
        store.put(KEY, 1, stage="alpha")
        store.get(KEY, None, stage="alpha")
        other = ArtifactStore(store.root)
        lifetime = other.lifetime_counters()
        assert lifetime["total"]["puts"] == 1
        assert lifetime["total"]["hits"] == 1
        assert lifetime["stages"]["alpha"]["hits"] == 1

    def test_stats_summary_shape(self, store):
        store.put(KEY, 1, stage="s")
        summary = store.stats_summary()
        assert set(summary) == {"root", "disk", "session", "lifetime"}
        assert summary["disk"]["objects"] == 1
        assert summary["disk"]["total_bytes"] > 0

    def test_clear(self, store):
        store.put(KEY, 1, stage="s")
        assert store.clear() == 1
        assert not store.has(KEY)
        assert store.disk_stats()["objects"] == 0

    def test_gc_evicts_oldest_first(self, store, tmp_path):
        import os

        keys = [f"{i:02d}" + "0" * 62 for i in range(3)]
        for i, key in enumerate(keys):
            store.put(key, "x" * 1000, stage="s")
            os.utime(store.object_path(key), (1000.0 + i, 1000.0 + i))
        size = store.object_path(keys[0]).stat().st_size
        removed, freed = store.gc(max_bytes=2 * size)
        assert removed == 1
        assert freed == size
        assert not store.has(keys[0])  # oldest gone
        assert store.has(keys[1]) and store.has(keys[2])

    def test_gc_noop_under_budget(self, store):
        store.put(KEY, 1, stage="s")
        assert store.gc(max_bytes=10 ** 9) == (0, 0)

    def test_gc_negative_budget_raises(self, store):
        with pytest.raises(ValueError):
            store.gc(max_bytes=-1)

    def test_hit_refreshes_mtime(self, store):
        import os

        store.put(KEY, 1, stage="s")
        path = store.object_path(KEY)
        os.utime(path, (1000.0, 1000.0))
        store.get(KEY, stage="s")
        assert path.stat().st_mtime > 1000.0

    def test_values_use_highest_pickle_protocol(self, store):
        store.put(KEY, {"a": 1}, stage="s")
        blob = store.object_path(KEY).read_bytes()
        assert pickle.loads(blob) == {"a": 1}


class TestDefaultStore:
    def test_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        reset_default_store()
        assert not cache_enabled()
        assert default_store() is None

    def test_enabled_uses_env_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", "on")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        reset_default_store()
        store = default_store()
        assert store is not None
        assert store.root == tmp_path
        assert cache_root() == tmp_path
        # Same config -> same instance (session counters survive).
        assert default_store() is store
        reset_default_store()

    def test_reconfigured_env_rebuilds(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", "on")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "a"))
        reset_default_store()
        first = default_store()
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "b"))
        second = default_store()
        assert first is not second
        assert second.root == tmp_path / "b"
        reset_default_store()


def _read_corrupt_slot(args):
    """Worker: read one (possibly corrupt) key; report what happened."""
    root, key = args
    store = ArtifactStore(root)
    value = store.get(key, "MISS", stage="heal")
    return (value, store.stats.quarantined)


class TestQuarantineHealing:
    def test_two_processes_race_on_one_truncated_object(self, tmp_path):
        # One truncated object, two concurrent readers.  Whatever the
        # interleaving — both read the corrupt bytes, or the loser finds
        # the slot already quarantined — both see a plain miss, exactly
        # one quarantine move wins, and a subsequent put heals the slot
        # while the bad bytes stay inspectable.
        from concurrent.futures import ProcessPoolExecutor

        store = ArtifactStore(tmp_path)
        store.put(KEY, {"payload": "original"}, stage="heal")
        path = store.object_path(KEY)
        path.write_bytes(path.read_bytes()[:5])

        args = [(str(tmp_path), KEY)] * 2
        with ProcessPoolExecutor(max_workers=2) as pool:
            outcomes = list(pool.map(_read_corrupt_slot, args))

        assert [value for value, _ in outcomes] == ["MISS", "MISS"]
        assert sum(q for _, q in outcomes) == 1
        assert len(list(store.quarantine_dir.iterdir())) == 1
        store.put(KEY, {"payload": "healed"}, stage="heal")
        assert store.get(KEY, stage="heal") == {"payload": "healed"}
        lifetime = store.lifetime_counters()
        assert lifetime["total"]["quarantined"] == 1
        assert lifetime["stages"]["heal"]["misses"] == 2

    def test_writer_heals_while_reader_quarantines(self, tmp_path):
        # Sequential interleaving of the same race: the reader quarantines
        # the corrupt object while a fresh writer has already re-put it.
        reader = ArtifactStore(tmp_path)
        writer = ArtifactStore(tmp_path)
        reader.put(KEY, [1, 2, 3], stage="s")
        path = reader.object_path(KEY)
        path.write_bytes(b"\x80garbage")
        writer.put(KEY, [4, 5, 6], stage="s")  # heals before the reader reads
        assert reader.get(KEY, stage="s") == [4, 5, 6]
        assert reader.stats.quarantined == 0
