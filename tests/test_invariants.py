"""Cross-module invariants, exercised with hypothesis where it pays.

These are the properties the analyses silently rely on; if a refactor
breaks one, figures go subtly wrong long before a shape assertion fires.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdn.catalog import VideoCatalog
from repro.cdn.datacenter import DataCenterDirectory, build_datacenter
from repro.cdn.selection import PreferredDcPolicy
from repro.cdn.store import ContentPlacement
from repro.geo.cities import default_atlas
from repro.net.asn import GOOGLE_ASN
from repro.net.ip import Ipv4Allocator, parse_network


def make_directory(num_dcs=3, servers_each=8):
    atlas = default_atlas()
    cities = ["Milan", "Zurich", "Paris", "Chicago", "Tokyo"][:num_dcs]
    alloc = Ipv4Allocator((parse_network("173.194.0.0/16"),))
    dcs = [
        build_datacenter(f"dc-{c.lower()}", atlas.get(c), servers_each, alloc, GOOGLE_ASN)
        for c in cities
    ]
    return DataCenterDirectory(dcs)


class TestSelectionBudgetInvariant:
    @given(
        st.integers(min_value=1, max_value=30),   # capacity
        st.integers(min_value=1, max_value=120),  # queries in the hour
        st.integers(min_value=0, max_value=50),   # seed
    )
    @settings(max_examples=40, deadline=None)
    def test_capped_dc_never_exceeds_budget(self, cap, queries, seed):
        directory = make_directory()
        policy = PreferredDcPolicy(
            directory,
            rankings={"r": ["dc-milan", "dc-zurich", "dc-paris"]},
            dns_capacity_per_hour={"dc-milan": float(cap)},
            seed=seed,
        )
        picks = [policy.select_dc("r", 500.0) for _ in range(queries)]
        assert picks.count("dc-milan") <= cap

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_uncapped_policy_is_pure_preferred(self, seed):
        directory = make_directory()
        policy = PreferredDcPolicy(
            directory,
            rankings={"r": ["dc-milan", "dc-zurich", "dc-paris"]},
            spill_probability=0.0,
            seed=seed,
        )
        assert all(policy.select_dc("r", 0.0) == "dc-milan" for _ in range(30))


class TestPlacementInvariants:
    @given(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=9))
    @settings(max_examples=30, deadline=None)
    def test_holders_superset_of_origins_without_eviction(self, pulls, video_offset):
        catalog = VideoCatalog(size=600, seed=3)
        dc_ids = [f"dc-{i}" for i in range(6)]
        placement = ContentPlacement(
            catalog, dc_ids, replicated_mass=0.7, regional_presence_prob=0.2
        )
        video = catalog.by_rank(len(catalog) - 1 - video_offset)
        rng = random.Random(pulls)
        for _ in range(pulls):
            placement.pull_through(dc_ids[rng.randrange(len(dc_ids))], video)
        holders = set(placement.holders(video))
        assert set(placement.origins(video)) <= holders or video.rank < placement.head_ranks

    def test_residency_monotone_without_cap(self):
        catalog = VideoCatalog(size=600, seed=4)
        dc_ids = [f"dc-{i}" for i in range(5)]
        placement = ContentPlacement(
            catalog, dc_ids, replicated_mass=0.7, regional_presence_prob=0.0
        )
        video = catalog.by_rank(len(catalog) - 2)
        sizes = []
        for dc_id in dc_ids:
            placement.pull_through(dc_id, video)
            sizes.append(placement.residency_count(video))
        assert sizes == sorted(sizes)


class TestEngineInvariants:
    def test_flow_conservation(self, tiny_world):
        """Without monitor loss, every emitted flow event lands in the trace
        and every request produces at least its video flow."""
        from repro.sim.engine import run_requests

        requests = tiny_world.generator.generate(tiny_world.duration_s)
        result = run_requests(tiny_world, requests=requests, miss_probability=0.0)
        assert result.requests == len(requests)
        assert len(result.dataset) >= result.requests

    def test_cause_counts_cover_requests(self, study_results):
        for name, result in study_results.items():
            direct = result.cause_counts.get("direct", 0)
            redirected_requests = result.requests - direct
            redirect_events = sum(
                count for cause, count in result.cause_counts.items()
                if cause != "direct"
            )
            # Chains mean events >= redirected requests; both bounded by 3x.
            assert redirect_events >= redirected_requests, name
            assert redirect_events <= 3 * redirected_requests + 1, name

    def test_trace_times_within_window(self, study_results):
        for name, result in study_results.items():
            duration = result.dataset.duration_s
            for record in result.dataset.records[:2000]:
                assert 0.0 <= record.t_start
                # Flows may end (or, via interactions, start) slightly past
                # the window edge, but never implausibly far.
                assert record.t_end < duration + 4000.0, name


class TestSessionFlowPartition:
    def test_focus_records_partition_into_sessions(self, pipeline):
        for name in pipeline.dataset_names:
            records = pipeline.focus_records[name]
            sessions = pipeline.sessions[name]
            assert sum(s.num_flows for s in sessions) == len(records)
