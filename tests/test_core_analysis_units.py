"""Unit tests for the analysis modules on hand-built synthetic inputs.

These tests bypass the simulator: they build tiny flow sets and fake
server maps so each analysis rule is checked in isolation.
"""

import pytest

from repro.core.loadbalance import analyze_load_balance
from repro.core.nonpreferred import (
    SessionPattern,
    dns_vs_redirection_shares,
    hourly_nonpreferred_cdf,
    nonpreferred_fraction,
    one_flow_breakdown,
    two_flow_breakdown,
    video_flow_preference,
)
from repro.core.preferred import (
    DataCenterView,
    PreferredDcReport,
    analyze_preferred,
)
from repro.core.sessions import build_sessions
from repro.core.summary import DatasetSummary, render_table1, summarize
from repro.geo.cities import default_atlas
from repro.geoloc.clustering import DataCenterCluster, ServerMap
from repro.trace.records import FlowRecord

#: Synthetic server addresses: 100s = preferred DC, 200s = other DC.
PREF_IP = 100
OTHER_IP = 200


def make_server_map():
    atlas = default_atlas()
    pref = DataCenterCluster(
        cluster_id="cluster-pref",
        city=atlas.get("Milan"),
        estimate=atlas.get("Milan").point,
        confidence_radius_km=40.0,
        server_ips=[PREF_IP, PREF_IP + 1],
    )
    other = DataCenterCluster(
        cluster_id="cluster-other",
        city=atlas.get("Chicago"),
        estimate=atlas.get("Chicago").point,
        confidence_radius_km=40.0,
        server_ips=[OTHER_IP, OTHER_IP + 1],
    )
    by_ip = {ip: pref for ip in pref.server_ips}
    by_ip.update({ip: other for ip in other.server_ips})
    return ServerMap(clusters=[pref, other], by_ip=by_ip, results_by_slash24={})


def make_report(server_map):
    views = [
        DataCenterView(cluster=server_map.clusters[0], num_bytes=900, num_flows=9,
                       min_rtt_ms=10.0, distance_km=100.0),
        DataCenterView(cluster=server_map.clusters[1], num_bytes=100, num_flows=1,
                       min_rtt_ms=90.0, distance_km=7000.0),
    ]
    return PreferredDcReport(
        dataset_name="synthetic", views=views,
        preferred_id="cluster-pref", total_bytes=1000,
    )


def vflow(dst, src=1, vid="V" * 11, t0=0.0, nbytes=50_000, dur=5.0):
    return FlowRecord(src_ip=src, dst_ip=dst, num_bytes=nbytes,
                      t_start=t0, t_end=t0 + dur, video_id=vid, resolution="360p")


def cflow(dst, src=1, vid="V" * 11, t0=0.0):
    return FlowRecord(src_ip=src, dst_ip=dst, num_bytes=500,
                      t_start=t0, t_end=t0 + 0.1, video_id=vid, resolution="360p")


@pytest.fixture
def server_map():
    return make_server_map()


@pytest.fixture
def report(server_map):
    return make_report(server_map)


class TestVideoFlowPreference:
    def test_split(self, server_map, report):
        records = [vflow(PREF_IP), vflow(OTHER_IP), cflow(PREF_IP), vflow(999)]
        split = video_flow_preference(records, report, server_map)
        assert len(split[True]) == 1
        assert len(split[False]) == 1  # control + unknown dropped

    def test_fraction(self, server_map, report):
        records = [vflow(PREF_IP), vflow(PREF_IP), vflow(OTHER_IP), vflow(OTHER_IP)]
        assert nonpreferred_fraction(records, report, server_map) == pytest.approx(0.5)

    def test_fraction_empty_raises(self, server_map, report):
        with pytest.raises(ValueError):
            nonpreferred_fraction([cflow(PREF_IP)], report, server_map)


class TestHourlyCdf:
    def test_cdf_values(self, server_map, report):
        records = []
        # Hour 0: 10 preferred; hour 1: 5 preferred + 5 non-preferred.
        for i in range(10):
            records.append(vflow(PREF_IP, t0=10.0 + i))
        for i in range(5):
            records.append(vflow(PREF_IP, t0=3700.0 + i))
            records.append(vflow(OTHER_IP, t0=3700.0 + i))
        cdf = hourly_nonpreferred_cdf(records, report, server_map, num_hours=2,
                                      min_flows_per_hour=5)
        assert len(cdf) == 2
        assert cdf.min == pytest.approx(0.0)
        assert cdf.max == pytest.approx(0.5)

    def test_thin_hours_skipped(self, server_map, report):
        records = [vflow(OTHER_IP, t0=10.0)]
        with pytest.raises(ValueError):
            hourly_nonpreferred_cdf(records, report, server_map, num_hours=1,
                                    min_flows_per_hour=5)


class TestSessionPatterns:
    def test_one_flow_breakdown(self, server_map, report):
        records = [
            vflow(PREF_IP, src=1, t0=0.0),
            vflow(OTHER_IP, src=2, t0=0.0),
            cflow(PREF_IP, src=3, t0=0.0), vflow(PREF_IP, src=3, t0=0.2),
        ]
        sessions = build_sessions(records, 1.0)
        breakdown = one_flow_breakdown(sessions, report, server_map)
        assert breakdown.total_sessions == 3
        assert breakdown.preferred == 1
        assert breakdown.nonpreferred == 1
        assert breakdown.one_flow_fraction == pytest.approx(2 / 3)

    def test_two_flow_patterns(self, server_map, report):
        records = [
            cflow(PREF_IP, src=1), vflow(PREF_IP, src=1, t0=0.2),
            cflow(PREF_IP, src=2), vflow(OTHER_IP, src=2, t0=0.2),
            cflow(OTHER_IP, src=3), vflow(PREF_IP, src=3, t0=0.2),
            cflow(OTHER_IP, src=4), vflow(OTHER_IP, src=4, t0=0.2),
        ]
        sessions = build_sessions(records, 1.0)
        patterns = two_flow_breakdown(sessions, report, server_map)
        assert patterns[SessionPattern.PREFERRED_PREFERRED] == pytest.approx(0.25)
        assert patterns[SessionPattern.PREFERRED_NONPREFERRED] == pytest.approx(0.25)
        assert patterns[SessionPattern.NONPREFERRED_PREFERRED] == pytest.approx(0.25)
        assert patterns[SessionPattern.NONPREFERRED_NONPREFERRED] == pytest.approx(0.25)

    def test_two_flow_requires_sessions(self, server_map, report):
        sessions = build_sessions([vflow(PREF_IP)], 1.0)
        with pytest.raises(ValueError):
            two_flow_breakdown(sessions, report, server_map)

    def test_dns_vs_redirection(self, server_map, report):
        records = [
            # DNS-caused: first flow already non-preferred.
            cflow(OTHER_IP, src=1), vflow(OTHER_IP, src=1, t0=0.2),
            # Redirection-caused: preferred first, video from non-preferred.
            cflow(PREF_IP, src=2), vflow(OTHER_IP, src=2, t0=0.2),
            cflow(PREF_IP, src=3), vflow(OTHER_IP, src=3, t0=0.2),
        ]
        sessions = build_sessions(records, 1.0)
        shares = dns_vs_redirection_shares(sessions, report, server_map)
        assert shares["dns"] == pytest.approx(1 / 3)
        assert shares["redirection"] == pytest.approx(2 / 3)

    def test_dns_vs_redirection_no_nonpreferred(self, server_map, report):
        sessions = build_sessions([vflow(PREF_IP)], 1.0)
        shares = dns_vs_redirection_shares(sessions, report, server_map)
        assert shares == {"dns": 0.0, "redirection": 0.0}


class TestPreferredSelection:
    def test_dominant_provider_wins(self, server_map):
        # analyze_preferred needs a Dataset; exercise _pick via report math.
        report = make_report(server_map)
        assert report.preferred_id == "cluster-pref"
        assert report.byte_share("cluster-pref") == pytest.approx(0.9)

    def test_eu2_rule_smallest_rtt_among_majors(self, server_map):
        views = [
            DataCenterView(cluster=server_map.clusters[1], num_bytes=550,
                           num_flows=55, min_rtt_ms=25.0, distance_km=500.0),
            DataCenterView(cluster=server_map.clusters[0], num_bytes=450,
                           num_flows=45, min_rtt_ms=8.0, distance_km=5.0),
        ]
        from repro.core.preferred import _pick_preferred

        assert _pick_preferred(views, 1000) == "cluster-pref"

    def test_cumulative_curves(self, report):
        by_rtt = report.cumulative_by_rtt()
        assert by_rtt.xs == [10.0, 90.0]
        assert by_rtt.ys[-1] == pytest.approx(1.0)
        by_distance = report.cumulative_by_distance()
        assert by_distance.xs == [100.0, 7000.0]

    def test_closest_k_share(self, report):
        assert report.closest_k_share(1) == pytest.approx(0.9)
        assert report.closest_k_share(2) == pytest.approx(1.0)

    def test_view_lookup(self, report):
        assert report.view("cluster-other").num_bytes == 100
        with pytest.raises(KeyError):
            report.view("cluster-none")


class TestLoadBalance:
    def test_series_and_correlation(self, server_map, report):
        records = []
        # Quiet hour 0: 4 local flows.  Busy hour 1: 20 flows, half local.
        for i in range(4):
            records.append(vflow(PREF_IP, t0=10.0 + i))
        for i in range(10):
            records.append(vflow(PREF_IP, t0=3700.0 + i))
            records.append(vflow(OTHER_IP, t0=3700.0 + i))
        lb = analyze_load_balance(records, report, server_map, num_hours=2)
        assert lb.flows_per_hour.ys == [4.0, 20.0]
        assert lb.local_fraction.ys[0] == pytest.approx(1.0)
        assert lb.local_fraction.ys[1] == pytest.approx(0.5)
        quiet, busy = lb.night_day_split()
        assert quiet == pytest.approx(1.0)
        assert busy == pytest.approx(0.5)

    def test_nan_for_empty_hours(self, server_map, report):
        import math

        records = [vflow(PREF_IP, t0=10.0)]
        lb = analyze_load_balance(records, report, server_map, num_hours=3)
        assert math.isnan(lb.local_fraction.ys[2])


class TestSummary:
    def test_summary_row(self, tiny_world):
        from repro.sim.engine import run_requests

        result = run_requests(tiny_world)
        summary = summarize(result.dataset)
        assert summary.flows == len(result.dataset)
        assert summary.num_clients == len(result.dataset.client_ips)
        assert summary.volume_gb > 0
        assert summary.mean_flow_bytes > 1000

    def test_render_table1(self):
        rows = [DatasetSummary("X", 10, 2_000_000_000, 3, 4)]
        text = render_table1(rows)
        assert "X" in text and "2.00" in text and "TABLE I" in text

    def test_mean_flow_bytes_empty(self):
        with pytest.raises(ValueError):
            DatasetSummary("X", 0, 0, 0, 0).mean_flow_bytes
