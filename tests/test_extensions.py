"""Tests for the extension features: fragmentation, LRU caches,
the geographic policy, and the >2-flow session analysis."""

import random

import pytest

from repro.cdn.catalog import Resolution, VideoCatalog
from repro.cdn.store import ContentPlacement
from repro.core.nonpreferred import multi_flow_breakdown
from repro.sim.driver import run_spec
from repro.sim.scenarios import PAPER_SCENARIOS, build_world


class TestFragmentation:
    def test_fragments_share_session(self, tiny_world):
        world = tiny_world
        client = next(iter(world.population))
        site = world.vantage.client_site(client.ip)
        resolver = world.vantage.resolver_for(client.ip)
        video = world.system.catalog.by_rank(0)
        rng = random.Random(3)
        fragmented = None
        for _ in range(300):
            outcome = world.system.handle_request(
                client_ip=client.ip, client_site=site, resolver=resolver,
                video=video, resolution=Resolution.R360, t_s=50.0, rng=rng,
                watch_fraction=1.0,
            )
            videos = [e for e in outcome.events if e.kind == "video"]
            if len(videos) == 2:
                fragmented = videos
                break
        assert fragmented is not None, "fragmentation never triggered in 300 tries"
        first, second = fragmented
        assert first.server_ip == second.server_ip
        assert 0.0 < second.t_start - first.t_end < 1.0  # same session at T=1s
        total = first.num_bytes + second.num_bytes
        assert total == pytest.approx(video.size_bytes(Resolution.R360), rel=0.01)

    def test_multi_flow_sessions_exist_in_traces(self, pipeline):
        for name in pipeline.dataset_names:
            breakdown = pipeline.multi_flow_breakdown(name)
            assert breakdown.sessions > 0, name
            assert 0.005 < breakdown.share_of_all_sessions < 0.12, name

    def test_multi_flow_trends_match_two_flow(self, pipeline):
        """Paper: '>2-flow sessions show similar trends to 2-flow sessions'."""
        eu1 = pipeline.multi_flow_breakdown("EU1-ADSL")
        assert eu1.first_preferred_rest_mixed >= eu1.first_nonpreferred
        eu2 = pipeline.multi_flow_breakdown("EU2")
        assert eu2.first_nonpreferred > eu2.first_preferred_rest_mixed

    def test_min_flows_validated(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.multi_flow_breakdown("EU2", min_flows=1)


class TestLruCache:
    @pytest.fixture
    def capped_placement(self):
        catalog = VideoCatalog(size=2000, seed=4)
        placement = ContentPlacement(
            catalog, [f"dc-{i}" for i in range(4)],
            replicated_mass=0.7, regional_presence_prob=0.0, cache_capacity=3,
        )
        return catalog, placement

    def _tail_videos(self, catalog, placement, dc_id, count):
        featured = {v.video_id for v in catalog.featured_videos}
        picked = []
        for rank in range(len(catalog) - 1, 0, -1):
            video = catalog.by_rank(rank)
            if video.video_id in featured:
                continue
            if not placement.is_resident(dc_id, video):
                picked.append(video)
            if len(picked) == count:
                return picked
        raise AssertionError("not enough cold tail videos")

    def test_eviction_beyond_capacity(self, capped_placement):
        catalog, placement = capped_placement
        videos = self._tail_videos(catalog, placement, "dc-0", 5)
        for video in videos:
            placement.pull_through("dc-0", video)
        assert placement.evictions == 2
        # The two oldest pulls were evicted...
        assert not placement.is_resident("dc-0", videos[0])
        assert not placement.is_resident("dc-0", videos[1])
        # ...the three newest remain.
        for video in videos[2:]:
            assert placement.is_resident("dc-0", video)

    def test_origin_copies_never_evicted(self, capped_placement):
        catalog, placement = capped_placement
        videos = self._tail_videos(catalog, placement, "dc-0", 4)
        for video in videos:
            placement.pull_through("dc-0", video)
            origins = placement.origins(video)
            for origin in origins:
                assert placement.is_resident(origin, video)

    def test_capacity_validated(self):
        catalog = VideoCatalog(size=100, seed=5)
        with pytest.raises(ValueError):
            ContentPlacement(catalog, ["dc-0"], cache_capacity=0)

    def test_tiny_cache_scenario_raises_misses(self):
        import dataclasses

        spec = PAPER_SCENARIOS["EU1-FTTH"]
        base = run_spec(spec, scale=0.006, seed=7)
        capped = run_spec(
            dataclasses.replace(spec, cache_capacity=10, regional_presence_prob=0.2),
            scale=0.006, seed=7,
        )
        assert capped.cause_counts.get("miss", 0) > base.cause_counts.get("miss", 0)
        assert capped.world.system.placement.evictions > 0


class TestDnsVariants:
    def test_preferred_outage_drains_dns(self):
        from repro.whatif.compare import compare_variants
        from repro.whatif.variants import variant_by_name

        report = compare_variants(
            "EU1-ADSL", [variant_by_name("preferred-outage")], scale=0.005, seed=7
        )
        outage = report.row("preferred-outage")
        # DNS stops handing out the preferred data center...
        assert outage.preferred_share < 0.05
        # ...but traffic concentrates one rank down, not everywhere.
        assert outage.top_dc_share > 0.8
        # Users pay a modest RTT penalty (next-ranked DC is still close).
        assert outage.median_serving_rtt_ms > report.baseline.median_serving_rtt_ms
        assert outage.median_serving_rtt_ms < 3 * report.baseline.median_serving_rtt_ms

    def test_sticky_dns_blunts_load_shaping(self):
        """Resolver caching reuses answers the assignment budget never saw,
        so EU2's internal data center takes more than its cap intends."""
        import dataclasses

        from repro.sim.driver import run_spec

        spec = PAPER_SCENARIOS["EU2"]
        base = run_spec(spec, scale=0.008, seed=7)
        sticky = run_spec(
            dataclasses.replace(spec, dns_cache_enabled=True, dns_ttl_s=1800.0),
            scale=0.008, seed=7,
        )
        internal = base.world.internal_dc_id
        base_local = base.served_dc_counts.get(internal, 0) / base.requests
        sticky_local = sticky.served_dc_counts.get(internal, 0) / sticky.requests
        assert sticky_local > base_local + 0.03
        # And the resolvers actually cached.
        resolver = sticky.world.vantage.subnets[0].resolver
        assert resolver.hits > 0

    def test_default_resolvers_do_not_cache(self, tiny_world):
        resolver = tiny_world.vantage.subnets[0].resolver
        assert resolver.hits == 0


class TestGeographicPolicy:
    def test_geo_policy_ranks_by_distance(self):
        world = build_world(
            PAPER_SCENARIOS["US-Campus"], scale=0.004, seed=7,
            policy_kind="geographic",
        )
        ranking = world.system.policy.ranking_for("US-Campus/Net-1")
        # Geography puts Chicago first for West Lafayette...
        assert ranking[0] == "dc-chicago"
        rtt_world = build_world(PAPER_SCENARIOS["US-Campus"], scale=0.004, seed=7)
        # ...which is exactly what the RTT-based policy does NOT do.
        assert rtt_world.system.policy.ranking_for("US-Campus/Net-1")[0] != "dc-chicago"

    def test_geo_policy_hurts_us_campus_rtt(self):
        from repro.whatif.compare import compare_variants
        from repro.whatif.variants import variant_by_name

        report = compare_variants(
            "US-Campus", [variant_by_name("geo-policy")], scale=0.005, seed=7
        )
        geo = report.row("geo-policy")
        # Serving from the detoured-but-close Chicago raises the median RTT.
        assert geo.median_serving_rtt_ms > report.baseline.median_serving_rtt_ms
