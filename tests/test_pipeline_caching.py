"""Tests for the pipeline's step caching and measurement accounting."""

import pytest

from repro.core.pipeline import StudyPipeline


class TestCaching:
    def test_cached_steps_compute_once(self, study_results):
        pipe = StudyPipeline(study_results, landmark_count=40, seed=11)
        first = pipe.rtt_campaigns
        second = pipe.rtt_campaigns
        assert first is second  # cached_property returns the same object

    def test_sessions_cached(self, pipeline):
        assert pipeline.sessions is pipeline.sessions
        assert pipeline.server_map is pipeline.server_map
        assert pipeline.preferred_reports is pipeline.preferred_reports

    def test_fresh_pipeline_independent(self, study_results, pipeline):
        other = StudyPipeline(study_results, landmark_count=40, seed=99)
        # Different measurement seed → numerically different campaigns...
        name = "EU1-FTTH"
        a = pipeline.rtt_campaigns[name]
        b = other.rtt_campaigns[name]
        common = set(a) & set(b)
        assert common
        assert any(abs(a[ip] - b[ip]) > 1e-9 for ip in common)
        # ...but the same physical floors underneath: min-filtered values
        # agree to within the jitter scale.
        assert all(abs(a[ip] - b[ip]) < 10.0 for ip in common)

    def test_same_seed_pipelines_agree(self, study_results):
        a = StudyPipeline(study_results, landmark_count=40, seed=11)
        b = StudyPipeline(study_results, landmark_count=40, seed=11)
        name = "EU1-FTTH"
        assert a.rtt_campaigns[name] == b.rtt_campaigns[name]

    def test_run_bundle_consistent_with_steps(self, pipeline):
        bundle = pipeline.run()
        assert bundle.summaries is pipeline.summaries
        assert bundle.preferred_reports is pipeline.preferred_reports
        for name in pipeline.dataset_names:
            assert bundle.nonpreferred_fractions[name] == pytest.approx(
                pipeline.nonpreferred_fraction(name)
            )
