"""Tests for the what-if framework."""

import dataclasses

import pytest

from repro.sim.driver import run_spec
from repro.sim.scenarios import PAPER_SCENARIOS
from repro.whatif.compare import ComparisonReport, compare_variants, render_comparison
from repro.whatif.metrics import extract_metrics
from repro.whatif.variants import (
    Variant,
    baseline_variant,
    standard_variants,
    variant_by_name,
)

SCALE = 0.006
SEED = 7


class TestVariants:
    def test_standard_library_names_unique(self):
        names = [v.name for v in standard_variants()]
        assert len(set(names)) == len(names)
        assert "baseline" in names
        assert "old-policy" in names

    def test_lookup(self):
        assert variant_by_name("flash-crowd").name == "flash-crowd"
        with pytest.raises(KeyError):
            variant_by_name("nope")

    def test_baseline_is_identity(self):
        spec = PAPER_SCENARIOS["EU1-ADSL"]
        assert baseline_variant().apply(spec) == spec

    def test_transforms_change_only_their_field(self):
        spec = PAPER_SCENARIOS["EU1-ADSL"]
        flash = variant_by_name("flash-crowd").apply(spec)
        assert flash.featured_share == 0.25
        assert dataclasses.replace(flash, featured_share=spec.featured_share) == spec

    def test_old_policy_is_policy_only(self):
        variant = variant_by_name("old-policy")
        spec = PAPER_SCENARIOS["EU1-ADSL"]
        assert variant.apply(spec) == spec
        assert variant.policy_kind == "proportional"


class TestMetrics:
    @pytest.fixture(scope="class")
    def metrics(self):
        result = run_spec(PAPER_SCENARIOS["EU1-FTTH"], scale=SCALE, seed=SEED)
        return extract_metrics(result)

    def test_basic_sanity(self, metrics):
        assert metrics.requests > 100
        assert metrics.flows >= metrics.requests
        assert 0.8 < metrics.preferred_share <= 1.0
        assert metrics.top_dc_share >= metrics.preferred_share
        assert metrics.distinct_dcs >= 2

    def test_rates_consistent(self, metrics):
        assert 0.0 <= metrics.miss_rate <= metrics.redirect_rate
        assert 0.0 <= metrics.overload_rate <= metrics.redirect_rate

    def test_user_performance_positive(self, metrics):
        assert metrics.median_startup_s > 0.0
        assert metrics.p90_startup_s >= metrics.median_startup_s
        assert metrics.median_serving_rtt_ms > 1.0

    def test_label_override(self):
        result = run_spec(PAPER_SCENARIOS["EU1-FTTH"], scale=SCALE, seed=SEED)
        assert extract_metrics(result, label="x").label == "x"


class TestComparison:
    @pytest.fixture(scope="class")
    def report(self):
        variants = [variant_by_name("old-policy"), variant_by_name("sparse-replication")]
        return compare_variants("EU1-FTTH", variants, scale=SCALE, seed=SEED)

    def test_baseline_prepended(self, report):
        assert report.rows[0].label == "baseline"
        assert len(report.rows) == 3
        assert report.baseline.label == "baseline"

    def test_old_policy_destroys_locality(self, report):
        old = report.row("old-policy")
        assert old.preferred_share < 0.3
        assert old.median_serving_rtt_ms > 3.0 * report.baseline.median_serving_rtt_ms
        assert old.distinct_dcs > report.baseline.distinct_dcs

    def test_sparse_replication_raises_misses(self, report):
        sparse = report.row("sparse-replication")
        assert sparse.miss_rate > 1.5 * report.baseline.miss_rate

    def test_delta_helper(self, report):
        delta = report.delta("old-policy", "median_serving_rtt_ms")
        assert delta > 0

    def test_row_lookup_errors(self, report):
        with pytest.raises(KeyError):
            report.row("nope")
        empty = ComparisonReport(scenario_name="x")
        with pytest.raises(LookupError):
            empty.baseline

    def test_render(self, report):
        text = render_comparison(report)
        assert "WHAT-IF COMPARISON" in text
        assert "old-policy" in text

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            compare_variants("Nope", [])
