"""Tests for the physical sanity checker."""

import pytest

from repro.geo.cities import default_atlas
from repro.geo.coords import GeoPoint
from repro.geoloc.geodb import build_reference_geodb
from repro.geoloc.sanity import audit_claims, check_claim, violation_fraction
from repro.net.ip import format_ip


class TestCheckClaim:
    def test_possible_claim_passes(self):
        turin = default_atlas().get("Turin").point
        milan = default_atlas().get("Milan").point
        # ~125 km needs >= 1.25 ms; 10 ms is fine.
        assert check_claim(turin, milan, 10.0) is None

    def test_impossible_claim_flagged(self):
        turin = default_atlas().get("Turin").point
        mountain_view = default_atlas().get("Mountain View").point
        violation = check_claim(turin, mountain_view, 15.0, target="x")
        assert violation is not None
        assert violation.required_rtt_ms > 90.0
        assert violation.impossibility_factor > 5.0
        assert violation.target == "x"

    def test_slack_loosens_the_bound(self):
        turin = default_atlas().get("Turin").point
        paris = default_atlas().get("Paris").point  # ~580 km -> >= 5.8 ms
        assert check_claim(turin, paris, 5.0) is not None
        assert check_claim(turin, paris, 5.0, slack=0.5) is None

    def test_slack_validated(self):
        p = GeoPoint(0.0, 0.0)
        with pytest.raises(ValueError):
            check_claim(p, p, 1.0, slack=0.0)


class TestAudit:
    def test_sorted_by_impossibility(self):
        turin = default_atlas().get("Turin").point
        mv = default_atlas().get("Mountain View").point
        claims = {"a": mv, "b": mv, "c": default_atlas().get("Milan").point}
        rtts = {"a": 5.0, "b": 50.0, "c": 10.0}
        violations = audit_claims(turin, claims, rtts)
        assert [v.target for v in violations] == ["a", "b"]

    def test_fraction(self):
        turin = default_atlas().get("Turin").point
        mv = default_atlas().get("Mountain View").point
        claims = {"a": mv, "b": default_atlas().get("Milan").point}
        rtts = {"a": 5.0, "b": 10.0}
        assert violation_fraction(turin, claims, rtts) == pytest.approx(0.5)

    def test_fraction_requires_overlap(self):
        with pytest.raises(ValueError):
            violation_fraction(GeoPoint(0, 0), {"a": GeoPoint(1, 1)}, {})

    def test_refutes_geodb_on_simulated_traces(self, pipeline, study_results):
        """The Section V argument end to end: the database's Mountain View
        claim is impossible for a large share of servers seen from Europe."""
        name = "EU1-ADSL"
        registry = study_results[name].world.registry
        geodb = build_reference_geodb(registry)
        rtts = pipeline.rtt_campaigns[name]
        claims = {}
        for ip in pipeline.focus_ips[name]:
            city = geodb.lookup(ip)
            if city is not None:
                claims[format_ip(ip)] = city.point
        rtts_by_label = {format_ip(ip): rtt for ip, rtt in rtts.items()}
        vantage = study_results[name].dataset.vantage.city.point
        fraction = violation_fraction(vantage, claims, rtts_by_label)
        assert fraction > 0.5
