"""Tests for the synthetic PlanetLab landmark population."""

import pytest

from repro.geo.cities import default_atlas
from repro.geo.coords import haversine_km
from repro.geo.landmarks import (
    PAPER_LANDMARK_MIX,
    Landmark,
    LandmarkSet,
    generate_landmarks,
)
from repro.geo.regions import Continent


class TestGeneration:
    def test_paper_mix_totals_215(self):
        assert sum(PAPER_LANDMARK_MIX.values()) == 215

    def test_default_generation_matches_mix(self):
        landmarks = generate_landmarks(seed=1)
        assert len(landmarks) == 215
        for continent, expected in PAPER_LANDMARK_MIX.items():
            assert len(landmarks.on_continent(continent)) == expected

    def test_deterministic(self):
        a = generate_landmarks(seed=42)
        b = generate_landmarks(seed=42)
        assert [lm.point for lm in a] == [lm.point for lm in b]

    def test_different_seeds_differ(self):
        a = generate_landmarks(seed=1)
        b = generate_landmarks(seed=2)
        assert [lm.point for lm in a] != [lm.point for lm in b]

    def test_landmarks_near_anchor_cities(self):
        atlas = default_atlas()
        for lm in generate_landmarks(seed=3):
            anchor = atlas.get(lm.anchor_city)
            assert haversine_km(lm.point, anchor.point) <= 41.0

    def test_unique_names(self):
        names = [lm.name for lm in generate_landmarks(seed=4)]
        assert len(set(names)) == len(names)

    def test_custom_mix(self):
        mix = {Continent.EUROPE: 5, Continent.ASIA: 2}
        landmarks = generate_landmarks(mix=mix, seed=0)
        assert len(landmarks) == 7
        assert len(landmarks.on_continent(Continent.EUROPE)) == 5


class TestLandmarkSet:
    def test_indexing_and_iteration(self):
        landmarks = generate_landmarks(seed=5)
        assert isinstance(landmarks[0], Landmark)
        assert len(list(landmarks)) == len(landmarks)

    def test_duplicate_names_rejected(self):
        lm = generate_landmarks(seed=6)[0]
        with pytest.raises(ValueError):
            LandmarkSet([lm, lm])

    def test_subsample_size_and_balance(self):
        landmarks = generate_landmarks(seed=7)
        sub = landmarks.subsample(40, seed=1)
        assert len(sub) == 40
        # Subsample keeps a presence on the two big continents.
        assert len(sub.on_continent(Continent.NORTH_AMERICA)) >= 10
        assert len(sub.on_continent(Continent.EUROPE)) >= 8

    def test_subsample_noop_when_large(self):
        landmarks = generate_landmarks(seed=8)
        assert landmarks.subsample(500) is landmarks

    def test_subsample_deterministic(self):
        landmarks = generate_landmarks(seed=9)
        a = landmarks.subsample(30, seed=2)
        b = landmarks.subsample(30, seed=2)
        assert [lm.name for lm in a] == [lm.name for lm in b]
