"""Tests for data centers and the directory."""

import pytest

from repro.cdn.datacenter import DataCenter, DataCenterDirectory, build_datacenter
from repro.geo.cities import default_atlas
from repro.net.asn import GOOGLE_ASN
from repro.net.ip import Ipv4Allocator, parse_network, slash24_of
from repro.net.latency import AccessTechnology


@pytest.fixture
def allocator():
    return Ipv4Allocator((parse_network("173.194.0.0/16"),))


@pytest.fixture
def dc(allocator):
    return build_datacenter(
        dc_id="dc-test",
        city=default_atlas().get("Amsterdam"),
        num_servers=60,
        allocator=allocator,
        asn=GOOGLE_ASN,
        server_capacity_per_hour=50.0,
    )


class TestBuild:
    def test_fleet_size(self, dc):
        assert dc.size == 60
        assert len({s.ip for s in dc.servers}) == 60

    def test_indices_sequential(self, dc):
        assert [s.index for s in dc.servers] == list(range(60))

    def test_single_slash24_for_small_fleet(self, dc):
        assert len(dc.networks) == 1
        assert all(slash24_of(s.ip) == dc.networks[0].network for s in dc.servers)

    def test_network_bounds_skipped(self, dc):
        net = dc.networks[0]
        ips = {s.ip for s in dc.servers}
        assert net.first not in ips  # .0
        assert net.last not in ips  # .255

    def test_large_fleet_spans_slash24s(self, allocator):
        big = build_datacenter(
            "dc-big", default_atlas().get("Chicago"), 300, allocator, GOOGLE_ASN
        )
        assert len(big.networks) == 2
        assert big.size == 300

    def test_zero_servers_rejected(self, allocator):
        with pytest.raises(ValueError):
            build_datacenter("dc-0", default_atlas().get("Chicago"), 0, allocator, GOOGLE_ASN)

    def test_server_site(self, dc):
        site = dc.server_site(dc.servers[0])
        assert site.access is AccessTechnology.DATACENTER
        assert site.group == "dc-test"
        assert site.point == dc.city.point

    def test_server_site_rejects_foreign_server(self, dc, allocator):
        other = build_datacenter(
            "dc-other", default_atlas().get("Chicago"), 4, allocator, GOOGLE_ASN
        )
        with pytest.raises(ValueError):
            dc.server_site(other.servers[0])

    def test_str(self, dc):
        assert "Amsterdam" in str(dc)


class TestDirectory:
    def test_lookup(self, dc):
        directory = DataCenterDirectory([dc])
        server = dc.servers[5]
        assert directory.dc_of_server(server.ip) is dc
        assert directory.server_at(server.ip) is server
        assert directory.get("dc-test") is dc

    def test_unknown(self, dc):
        directory = DataCenterDirectory([dc])
        assert directory.dc_of_server(123) is None
        assert directory.server_at(123) is None
        with pytest.raises(KeyError):
            directory.get("dc-none")

    def test_duplicate_id_rejected(self, dc):
        with pytest.raises(ValueError):
            DataCenterDirectory([dc, dc])

    def test_iteration_and_ids(self, dc, allocator):
        other = build_datacenter(
            "dc-other", default_atlas().get("Chicago"), 4, allocator, GOOGLE_ASN
        )
        directory = DataCenterDirectory([dc, other])
        assert len(directory) == 2
        assert directory.ids == ["dc-test", "dc-other"]
        assert list(directory)[0] is dc
