"""Unit tests for the literature selection policies and the registry."""

import pytest

from repro.cdn.datacenter import DataCenterDirectory, build_datacenter
from repro.cdn.policies import (
    GoWithTheWinnerPolicy,
    IspTrafficEngineeringPolicy,
    PartitionedRankingPolicy,
)
from repro.cdn.selection import (
    PolicyContext,
    PreferredDcPolicy,
    UnknownPolicyError,
    make_policy,
    register_policy,
    registered_policy_kinds,
)
from repro.geo.cities import default_atlas
from repro.net.asn import GOOGLE_ASN
from repro.net.ip import Ipv4Allocator, parse_network


@pytest.fixture
def directory():
    atlas = default_atlas()
    alloc = Ipv4Allocator((parse_network("173.194.0.0/16"),))
    dcs = [
        build_datacenter("dc-a", atlas.get("Milan"), 10, alloc, GOOGLE_ASN),
        build_datacenter("dc-b", atlas.get("Zurich"), 20, alloc, GOOGLE_ASN),
        build_datacenter("dc-c", atlas.get("Paris"), 40, alloc, GOOGLE_ASN),
    ]
    return DataCenterDirectory(dcs)


RANKINGS = {"r1": ["dc-a", "dc-b", "dc-c"], "r2": ["dc-b", "dc-a", "dc-c"]}
RTT_MS = {"dc-a": 12.0, "dc-b": 25.0, "dc-c": 48.0}


class TestRegistry:
    def test_builtin_kinds_are_registered_sorted(self):
        kinds = registered_policy_kinds()
        assert kinds == tuple(sorted(kinds))
        assert {"preferred", "proportional", "geographic", "gwtw",
                "isp-te", "partition"} <= set(kinds)

    def test_make_policy_builds_each_kind(self, directory):
        context = PolicyContext(
            directory=directory, rankings=RANKINGS,
            eligible=("dc-a", "dc-b", "dc-c"), rtt_ms=RTT_MS, seed=3,
        )
        for kind in registered_policy_kinds():
            policy = make_policy(kind, context)
            picked = policy.select_dc("r1", 0.0)
            assert picked in ("dc-a", "dc-b", "dc-c")

    def test_unknown_kind_raises_naming_the_alternatives(self, directory):
        context = PolicyContext(
            directory=directory, rankings=RANKINGS,
            eligible=("dc-a",), seed=3,
        )
        with pytest.raises(UnknownPolicyError) as excinfo:
            make_policy("anycast", context)
        message = str(excinfo.value)
        assert "anycast" in message
        for kind in registered_policy_kinds():
            assert kind in message

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_policy("preferred")(lambda context: None)

    def test_empty_kind_rejected(self):
        with pytest.raises(ValueError):
            register_policy("")(lambda context: None)

    def test_preferred_factory_matches_direct_construction(self, directory):
        context = PolicyContext(
            directory=directory, rankings=RANKINGS,
            eligible=("dc-a", "dc-b", "dc-c"), spill_probability=0.1,
            seed=9,
        )
        from_registry = make_policy("preferred", context)
        direct = PreferredDcPolicy(
            directory, RANKINGS, spill_probability=0.1, seed=9,
        )
        picks_a = [from_registry.select_dc("r1", 0.0) for _ in range(200)]
        picks_b = [direct.select_dc("r1", 0.0) for _ in range(200)]
        assert picks_a == picks_b


class TestGoWithTheWinner:
    def test_races_then_commits(self, directory):
        policy = GoWithTheWinnerPolicy(
            directory, RANKINGS, rtt_ms=RTT_MS, session_ttl_s=300.0, seed=4,
        )
        first = policy.select_dc("r1", 0.0)
        assert policy.races == 1
        assert policy.select_dc("r1", 10.0) == first
        assert policy.sticky_hits == 1

    def test_commitment_expires_after_the_session_ttl(self, directory):
        policy = GoWithTheWinnerPolicy(
            directory, RANKINGS, rtt_ms=RTT_MS, session_ttl_s=300.0, seed=4,
        )
        policy.select_dc("r1", 0.0)
        policy.select_dc("r1", 301.0)
        assert policy.races == 2

    def test_all_answer_still_races_within_candidates(self, directory):
        policy = GoWithTheWinnerPolicy(
            directory, RANKINGS, rtt_ms=RTT_MS, race_size=2,
            answer_probability=1.0, session_ttl_s=0.0, seed=4,
        )
        for step in range(50):
            picked = policy.select_dc("r1", float(step * 1000))
            assert picked in ("dc-a", "dc-b")  # ranking[:2]
            assert not policy.last_race.fallback

    def test_nobody_answers_falls_back_to_the_head(self, directory):
        # answer_probability must be > 0, so drive the RNG instead: with
        # a tiny probability every race ends in fallback almost surely.
        policy = GoWithTheWinnerPolicy(
            directory, RANKINGS, rtt_ms=RTT_MS, answer_probability=1e-12,
            session_ttl_s=0.0, seed=4,
        )
        picked = policy.select_dc("r1", 0.0)
        assert policy.last_race.fallback
        assert policy.last_race.answered == ()
        assert picked == "dc-a"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"race_size": 1},
            {"answer_probability": 0.0},
            {"answer_probability": 1.5},
            {"session_ttl_s": -1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, directory, kwargs):
        with pytest.raises(ValueError):
            GoWithTheWinnerPolicy(directory, RANKINGS, rtt_ms=RTT_MS,
                                  **kwargs)

    def test_unknown_resolver_raises(self, directory):
        policy = GoWithTheWinnerPolicy(directory, RANKINGS, rtt_ms=RTT_MS)
        with pytest.raises(KeyError):
            policy.select_dc("r9", 0.0)


class TestIspTrafficEngineering:
    def test_steering_shifts_mid_week(self, directory):
        week = 7 * 86400.0
        policy = IspTrafficEngineeringPolicy(
            directory, RANKINGS, rtt_ms=RTT_MS, duration_s=week, seed=5,
        )
        assert policy.shift_t_s == week / 2.0
        early = policy.steering_weights("r1", 0.0)
        late = policy.steering_weights("r1", week - 1.0)
        assert early != late
        assert early["dc-a"] > late["dc-a"]

    def test_preferred_now_tracks_the_steering_table(self, directory):
        # dc-a at 12 ms is the early favourite; congested ×2.5 it costs
        # an effective 30 ms and dc-b (25 ms) takes over.
        policy = IspTrafficEngineeringPolicy(
            directory, RANKINGS, rtt_ms=RTT_MS, congestion_factor=2.5,
            seed=5,
        )
        assert policy.preferred_now("r1", 0.0) == "dc-a"
        assert policy.preferred_now("r1", policy.shift_t_s) == "dc-b"

    def test_low_cost_dcs_get_more_traffic(self, directory):
        policy = IspTrafficEngineeringPolicy(
            directory, RANKINGS, rtt_ms=RTT_MS, seed=5,
        )
        for _ in range(3000):
            policy.select_dc("r1", 0.0)
        assert policy.steered["dc-a"] > policy.steered["dc-b"] > \
            policy.steered.get("dc-c", 0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_candidates": 1},
            {"congestion_factor": 1.0},
            {"duration_s": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, directory, kwargs):
        with pytest.raises(ValueError):
            IspTrafficEngineeringPolicy(directory, RANKINGS, rtt_ms=RTT_MS,
                                        **kwargs)


class TestPartitionedRanking:
    def test_partition_members_share_one_merged_ranking(self, directory):
        policy = PartitionedRankingPolicy(
            directory, RANKINGS, partition_size=2, seed=6,
        )
        assert policy.partition_of["r1"] == policy.partition_of["r2"]
        assert policy.ranking_for("r1") == policy.ranking_for("r2")

    def test_borda_merge_of_the_fixture_rankings(self, directory):
        # r1 ranks a>b>c, r2 ranks b>a>c: a and b tie on rank sum and the
        # first member's order (r1: a before b) breaks the tie.
        policy = PartitionedRankingPolicy(
            directory, RANKINGS, partition_size=2, seed=6,
        )
        assert policy.ranking_for("r1") == ["dc-a", "dc-b", "dc-c"]

    def test_partition_size_one_degenerates_to_preferred(self, directory):
        partitioned = PartitionedRankingPolicy(
            directory, RANKINGS, partition_size=1, seed=6,
        )
        plain = PreferredDcPolicy(directory, RANKINGS, seed=6)
        for resolver_id in RANKINGS:
            assert partitioned.ranking_for(resolver_id) == \
                plain.ranking_for(resolver_id)

    def test_mismatched_member_dc_sets_rejected(self, directory):
        rankings = {"r1": ["dc-a", "dc-b"], "r2": ["dc-b", "dc-c"]}
        with pytest.raises(ValueError):
            PartitionedRankingPolicy(directory, rankings, partition_size=2)

    def test_invalid_partition_size_rejected(self, directory):
        with pytest.raises(ValueError):
            PartitionedRankingPolicy(directory, RANKINGS, partition_size=0)
