"""Tests for the gnuplot data export."""

import pytest

from repro.reporting.gnuplot import (
    export_figure_cdfs,
    write_cdf_dat,
    write_gnuplot_script,
    write_series_dat,
)
from repro.reporting.series import Cdf, Series


class TestCdfDat:
    def test_rows_monotone(self, tmp_path):
        cdf = Cdf([5.0, 1.0, 3.0, 2.0, 4.0])
        path = write_cdf_dat(cdf, tmp_path / "c.dat", label="x")
        rows = [
            tuple(float(tok) for tok in line.split())
            for line in path.read_text().splitlines()
            if not line.startswith("#")
        ]
        xs = [r[0] for r in rows]
        ys = [r[1] for r in rows]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == pytest.approx(1.0)

    def test_header_present(self, tmp_path):
        path = write_cdf_dat(Cdf([1.0]), tmp_path / "c.dat", label="bytes")
        assert path.read_text().startswith("# CDF of bytes")


class TestSeriesDat:
    def test_multi_column(self, tmp_path):
        a = Series(label="a", xs=[0.0, 1.0], ys=[10.0, 20.0])
        b = Series(label="b", xs=[0.0, 1.0], ys=[1.0, 2.0])
        path = write_series_dat([a, b], tmp_path / "s.dat", x_label="hour")
        lines = [l for l in path.read_text().splitlines() if not l.startswith("#")]
        assert lines[0].split() == ["0", "10", "1"]
        assert lines[1].split() == ["1", "20", "2"]

    def test_misaligned_rejected(self, tmp_path):
        a = Series(label="a", xs=[0.0], ys=[1.0])
        b = Series(label="b", xs=[1.0], ys=[1.0])
        with pytest.raises(ValueError):
            write_series_dat([a, b], tmp_path / "s.dat")
        with pytest.raises(ValueError):
            write_series_dat([], tmp_path / "s.dat")


class TestScript:
    def test_script_references_curves(self, tmp_path):
        dat = tmp_path / "x.dat"
        dat.write_text("0 0\n")
        path = write_gnuplot_script(
            {"curve-one": dat}, tmp_path / "fig.gp",
            title="T", x_label="X", y_label="Y", logscale_x=True,
        )
        text = path.read_text()
        assert "curve-one" in text
        assert "x.dat" in text
        assert "set logscale x" in text

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_gnuplot_script({}, tmp_path / "fig.gp", "T", "X", "Y")


class TestExport:
    def test_export_figure(self, tmp_path):
        cdfs = {"US-Campus": Cdf([1.0, 2.0]), "EU2": Cdf([3.0, 4.0])}
        script = export_figure_cdfs(cdfs, tmp_path, "fig99", x_label="ms")
        assert script.exists()
        dats = sorted(p.name for p in tmp_path.glob("fig99_*.dat"))
        assert dats == ["fig99_eu2.dat", "fig99_us-campus.dat"]

    def test_cli_figures_command(self, tmp_path):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(
            ["figures", "--out-dir", str(tmp_path / "figs"),
             "--scale", "0.004", "--landmarks", "40"],
            out=out,
        )
        assert code == 0
        scripts = list((tmp_path / "figs").glob("*.gp"))
        assert len(scripts) == 5
        dats = list((tmp_path / "figs").glob("*.dat"))
        assert len(dats) >= 10
