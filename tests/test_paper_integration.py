"""End-to-end reproduction checks: every paper shape target, one test each.

These tests run the paper's full methodology over the shared simulated week
and assert the qualitative findings of every table and figure.  They are
the "does the reproduction reproduce" layer; EXPERIMENTS.md records the
measured numbers next to the paper's.
"""


import pytest

from repro.core.asmap import AS_GROUPS
from repro.core.hotspots import exactly_once_fraction, nonpreferred_requests_per_video
from repro.core.nonpreferred import SessionPattern
from repro.core.sessions import multi_flow_fraction
from repro.core.subnets import most_biased_subnet
from repro.geo.coords import haversine_km
from repro.net.latency import LatencyModel

EU1_DATASETS = ("EU1-Campus", "EU1-ADSL", "EU1-FTTH")
NON_EU2 = ("US-Campus",) + EU1_DATASETS
ALL = NON_EU2 + ("EU2",)


class TestTable1:
    def test_all_rows_populated(self, pipeline):
        for name in ALL:
            summary = pipeline.summaries[name]
            assert summary.flows > 500
            assert summary.num_servers > 50
            assert summary.num_clients > 20
            assert summary.volume_gb > 0.5

    def test_relative_volumes(self, pipeline):
        # US-Campus and EU1-ADSL are the big traces; FTTH the smallest.
        flows = {n: pipeline.summaries[n].flows for n in ALL}
        assert flows["US-Campus"] > 3 * flows["EU1-FTTH"]
        assert flows["EU1-ADSL"] > 3 * flows["EU1-FTTH"]


class TestTable2:
    def test_google_dominates_bytes(self, pipeline):
        for name in NON_EU2:
            breakdown = pipeline.as_breakdowns[name]
            assert breakdown.byte_fractions["google"] > 0.95
            assert breakdown.byte_fractions["same_as"] == 0.0

    def test_legacy_many_servers_few_bytes(self, pipeline):
        for name in ALL:
            breakdown = pipeline.as_breakdowns[name]
            srv, byt = breakdown.share("youtube_eu")
            assert srv > 0.05, name
            assert byt < 0.2, name
            assert srv > byt, name

    def test_eu2_same_as_column(self, pipeline):
        breakdown = pipeline.as_breakdowns["EU2"]
        # The in-ISP data center carries a large byte share (paper: 38.6 %).
        assert 0.2 < breakdown.byte_fractions["same_as"] < 0.6
        for name in NON_EU2:
            assert pipeline.as_breakdowns[name].byte_fractions["same_as"] == 0.0

    def test_fractions_sum_to_one(self, pipeline):
        for name in ALL:
            breakdown = pipeline.as_breakdowns[name]
            assert sum(breakdown.server_fractions[g] for g in AS_GROUPS) == pytest.approx(1.0)
            assert sum(breakdown.byte_fractions[g] for g in AS_GROUPS) == pytest.approx(1.0)


class TestTable3:
    def test_home_continent_dominates(self, pipeline):
        rows = {r.name: r for r in pipeline.table3_rows}
        assert rows["US-Campus"].counts["N. America"] > rows["US-Campus"].counts["Europe"]
        for name in EU1_DATASETS + ("EU2",):
            assert rows[name].counts["Europe"] > rows[name].counts["N. America"]

    def test_foreign_servers_present(self, pipeline):
        """Paper: 'at least 10% of the accessed servers are in a different
        continent' — for the big traces."""
        rows = {r.name: r for r in pipeline.table3_rows}
        for name in ("US-Campus", "EU1-ADSL", "EU2"):
            row = rows[name]
            home = "N. America" if name == "US-Campus" else "Europe"
            foreign = row.total - row.counts[home]
            assert foreign / row.total > 0.05, name


class TestFigure2:
    def test_eu_vantage_sees_fast_servers(self, pipeline):
        """Maxmind's all-in-California claim is physically impossible."""
        transatlantic_floor = LatencyModel.ideal_rtt_ms(haversine_km(
            pipeline.dataset("EU1-Campus").vantage.city.point,
            __import__("repro.geo.cities", fromlist=["default_atlas"]).default_atlas()
            .get("Mountain View").point,
        ))
        for name in EU1_DATASETS:
            cdf = pipeline.rtt_cdf(name)
            assert cdf.fraction_below(transatlantic_floor * 0.5) > 0.2, name

    def test_rtt_spread_over_continents(self, pipeline):
        for name in ALL:
            cdf = pipeline.rtt_cdf(name)
            assert cdf.max > 100.0
            assert cdf.min < 60.0


class TestFigure3:
    def test_confidence_radii_small(self, pipeline):
        cdfs = pipeline.fig3_cdfs
        assert set(cdfs) == {"US", "Europe"}
        for region, cdf in cdfs.items():
            assert cdf.median < 150.0, region
            assert cdf.quantile(0.9) < 500.0, region


class TestFigure4:
    def test_bimodal_sizes_with_kink_at_1000(self, pipeline):
        for name in ALL:
            cdf = pipeline.flow_size_cdf(name)
            below_kink = cdf.fraction_below(1000)
            # A visible control-flow step...
            assert 0.05 < below_kink < 0.45, name
            # ...and almost nothing between 1 kB and 20 kB (the valley).
            valley = cdf.fraction_below(19_000) - cdf.fraction_below(1_000)
            assert valley < 0.02, name


class TestFigure5:
    def test_gap_sensitivity(self, pipeline):
        histograms = pipeline.gap_sensitivity("US-Campus")
        singles = {gap: h["1"] for gap, h in histograms.items()}
        # T <= 10 s stable...
        assert singles[1.0] == pytest.approx(singles[5.0], abs=0.01)
        assert singles[1.0] == pytest.approx(singles[10.0], abs=0.01)
        # ...larger T merges user interactions into sessions.
        assert singles[60.0] < singles[10.0] - 0.005
        assert singles[300.0] < singles[60.0]


class TestFigure6:
    def test_single_flow_share(self, pipeline):
        """Paper: 72.5-80.5 % of sessions consist of a single flow."""
        for name in ALL:
            histogram = pipeline.session_histogram(name)
            assert 0.68 < histogram["1"] < 0.90, name

    def test_redirection_not_insignificant(self, pipeline):
        for name in ALL:
            fraction = multi_flow_fraction(pipeline.sessions[name])
            assert fraction > 0.10, name


class TestFigure7:
    def test_preferred_dc_share(self, pipeline):
        """One data center provides > 85 % of bytes (except EU2)."""
        for name in NON_EU2:
            report = pipeline.preferred_reports[name]
            assert report.byte_share(report.preferred_id) > 0.8, name

    def test_preferred_is_min_rtt(self, pipeline):
        for name in ALL:
            report = pipeline.preferred_reports[name]
            major = [v for v in report.views
                     if v.num_bytes / report.total_bytes > 0.05]
            assert report.preferred.min_rtt_ms == min(v.min_rtt_ms for v in major), name

    def test_eu2_two_majors(self, pipeline):
        report = pipeline.preferred_reports["EU2"]
        shares = sorted(
            (v.num_bytes / report.total_bytes for v in report.views), reverse=True
        )
        assert shares[0] + shares[1] > 0.9
        assert shares[0] < 0.85  # no single dominant data center


class TestFigure8:
    def test_us_campus_ignores_geography(self, pipeline):
        """Paper: the five closest data centers provide < 2 % of bytes."""
        report = pipeline.preferred_reports["US-Campus"]
        assert report.closest_k_share(5) < 0.05

    def test_eu1_geography_aligned(self, pipeline):
        report = pipeline.preferred_reports["EU1-ADSL"]
        assert report.closest_k_share(5) > 0.8


class TestFigure9:
    def test_nonpreferred_fractions(self, pipeline):
        """Paper: 5-15 % for US/EU1, > 55 % for EU2."""
        for name in NON_EU2:
            fraction = pipeline.nonpreferred_fraction(name)
            assert 0.03 < fraction < 0.20, (name, fraction)
        assert pipeline.nonpreferred_fraction("EU2") > 0.5

    def test_eu2_hourly_variation_widest(self, pipeline):
        eu2 = pipeline.fig9_cdf("EU2")
        assert eu2.median > 0.4
        eu1 = pipeline.fig9_cdf("EU1-ADSL")
        assert eu1.quantile(0.9) < 0.3


class TestFigure10:
    def test_one_flow_mostly_preferred(self, pipeline):
        for name in NON_EU2:
            breakdown = pipeline.one_flow_breakdown(name)
            assert breakdown.preferred_fraction > 0.6, name
            assert breakdown.nonpreferred_fraction < 0.15, name

    def test_eu2_one_flow_mostly_nonpreferred(self, pipeline):
        breakdown = pipeline.one_flow_breakdown("EU2")
        assert breakdown.nonpreferred_fraction > 0.3
        assert breakdown.nonpreferred_fraction > breakdown.preferred_fraction * 0.8

    def test_eu1_redirection_dominates_two_flow(self, pipeline):
        for name in EU1_DATASETS:
            patterns = pipeline.two_flow_breakdown(name)
            pn = patterns[SessionPattern.PREFERRED_NONPREFERRED]
            nn = patterns[SessionPattern.NONPREFERRED_NONPREFERRED]
            assert pn > nn, name

    def test_eu2_dns_dominates_two_flow(self, pipeline):
        patterns = pipeline.two_flow_breakdown("EU2")
        nn = patterns[SessionPattern.NONPREFERRED_NONPREFERRED]
        pn = patterns[SessionPattern.PREFERRED_NONPREFERRED]
        assert nn > pn

    def test_cause_attribution(self, pipeline):
        # EU2's non-preferred flows are overwhelmingly DNS-caused; in the
        # EU1 traces redirection carries a large share alongside DNS.
        assert pipeline.dns_vs_redirection("EU2")["dns"] > 0.6
        assert pipeline.dns_vs_redirection("EU1-ADSL")["redirection"] > 0.35


class TestFigure11:
    def test_eu2_load_balance_signature(self, pipeline):
        lb = pipeline.load_balance("EU2")
        quiet, busy = lb.night_day_split()
        assert quiet > 0.6
        assert busy < 0.45
        assert lb.correlation() < -0.6

    def test_eu1_no_such_signature(self, pipeline):
        lb = pipeline.load_balance("EU1-ADSL")
        quiet, busy = lb.night_day_split()
        assert abs(quiet - busy) < 0.15


class TestFigure12:
    def test_net3_bias(self, pipeline):
        """Paper: Net-3 has ~4 % of flows but ~50 % of non-preferred."""
        shares = pipeline.subnet_shares("US-Campus")
        net3 = next(s for s in shares if s.subnet_name == "Net-3")
        assert net3.all_share < 0.10
        assert net3.nonpreferred_share > 0.30
        assert most_biased_subnet(shares).subnet_name == "Net-3"

    def test_other_subnets_unbiased(self, pipeline):
        shares = pipeline.subnet_shares("US-Campus")
        for s in shares:
            if s.subnet_name != "Net-3":
                assert s.bias < 1.5, s.subnet_name


class TestFigure13:
    def test_mass_at_exactly_once(self, pipeline):
        """Paper: ~85 % of non-preferred videos downloaded exactly once."""
        for name in ("EU1-Campus", "EU1-ADSL"):
            counts = nonpreferred_requests_per_video(
                pipeline.focus_records[name],
                pipeline.preferred_reports[name],
                pipeline.server_map,
            )
            assert exactly_once_fraction(counts) > 0.6, name

    def test_heavy_tail(self, pipeline):
        cdf = pipeline.fig13_cdf("EU1-ADSL")
        assert cdf.max > 10 * cdf.median


class TestFigure14:
    def test_hot_videos_are_daily_spikes(self, pipeline):
        videos = pipeline.hot_videos("EU1-ADSL")
        assert len(videos) == 4
        spiky = [v for v in videos if v.spike_concentration() > 0.8]
        assert len(spiky) >= 3

    def test_nonpreferred_concentrated_in_spike(self, pipeline):
        for video in pipeline.hot_videos("EU1-ADSL", top_k=2):
            total_np = sum(video.nonpreferred_requests.ys)
            assert total_np > 0
            peak = video.peak_hour()
            window = [
                y for x, y in zip(video.nonpreferred_requests.xs,
                                  video.nonpreferred_requests.ys)
                if abs(x - peak) <= 14
            ]
            assert sum(window) > 0.7 * total_np


class TestFigure15:
    def test_max_far_above_average(self, pipeline):
        """Paper: one server answers 650 requests while the average is 50."""
        load = pipeline.server_load("EU1-ADSL")
        assert load.peak_ratio() > 4.0


class TestFigure16:
    def test_hot_server_redirects_during_spike(self, pipeline):
        report = pipeline.hot_server("EU1-ADSL")
        assert report.total_sessions() > 50
        redirected = sum(report.first_preferred_rest_not.ys)
        assert redirected > 0
        # Redirections cluster where the feature-day peak is (weighted by
        # session count: stray off-peak redirects exist but carry little).
        peak_hour = report.first_preferred_rest_not.xs[
            report.first_preferred_rest_not.ys.index(
                report.first_preferred_rest_not.max_y()
            )
        ]
        within_day = sum(
            y for x, y in zip(report.first_preferred_rest_not.xs,
                              report.first_preferred_rest_not.ys)
            if abs(x - peak_hour) <= 24
        )
        assert within_day / redirected > 0.6
