"""Tests for the shortest-ping baseline."""

import pytest

from repro.geo.cities import default_atlas
from repro.geo.coords import haversine_km
from repro.geo.landmarks import generate_landmarks
from repro.geoloc.cbg import CbgGeolocator
from repro.geoloc.probing import RttProber
from repro.geoloc.shortest_ping import ShortestPingGeolocator
from repro.net.latency import AccessTechnology, LatencyModel, Site


@pytest.fixture(scope="module")
def setup():
    landmarks = generate_landmarks(seed=42).subsample(60, seed=1)
    latency = LatencyModel(seed=123)
    return landmarks, latency


def dc_site(city_name):
    city = default_atlas().get(city_name)
    return Site(
        key=f"srv:{city_name}", point=city.point,
        access=AccessTechnology.DATACENTER, group=f"dc:{city_name}",
    )


class TestShortestPing:
    def test_lands_on_a_landmark(self, setup):
        landmarks, latency = setup
        sp = ShortestPingGeolocator(landmarks, RttProber(latency, probes=4, seed=2))
        result = sp.geolocate_target(dc_site("Amsterdam"))
        assert any(lm.name == result.landmark_name for lm in landmarks)
        assert result.rtt_ms > 0

    def test_reasonable_in_dense_regions(self, setup):
        landmarks, latency = setup
        sp = ShortestPingGeolocator(landmarks, RttProber(latency, probes=4, seed=3))
        for city in ("Amsterdam", "Chicago", "Milan"):
            result = sp.geolocate_target(dc_site(city))
            err = haversine_km(result.estimate, dc_site(city).point)
            assert err < 800.0, city

    def test_cbg_beats_shortest_ping_off_grid(self, setup):
        """Where no landmark is nearby, triangulation beats snapping.

        On targets co-located with a landmark city, shortest-ping is
        trivially strong (the landmark *is* the answer); the methods
        separate on rural targets between metro areas — where CBG's
        constraint intersection still narrows the location down.
        """
        from repro.geo.coords import GeoPoint

        landmarks, latency = setup
        cbg = CbgGeolocator(landmarks, RttProber(latency, probes=4, seed=4))
        sp = ShortestPingGeolocator(landmarks, RttProber(latency, probes=4, seed=5))
        rural = {
            "central-france": GeoPoint(46.8, 2.6),
            "bavaria-rural": GeoPoint(49.2, 10.5),
            "iowa": GeoPoint(42.0, -93.5),
            "appalachia": GeoPoint(37.5, -81.0),
            "aragon": GeoPoint(41.5, -1.0),
        }
        cbg_err = sp_err = 0.0
        for name, point in rural.items():
            target = Site(
                key=f"t:{name}", point=point,
                access=AccessTechnology.DATACENTER, group=f"t:{name}",
            )
            cbg_err += haversine_km(cbg.geolocate_target(target).estimate, point)
            sp_err += haversine_km(sp.geolocate_target(target).estimate, point)
        assert cbg_err < sp_err

    def test_empty_measurements_rejected(self, setup):
        landmarks, latency = setup
        sp = ShortestPingGeolocator(landmarks, RttProber(latency, probes=4, seed=6))
        with pytest.raises(ValueError):
            sp.geolocate({})

    def test_partial_measurements_ok(self, setup):
        landmarks, latency = setup
        sp = ShortestPingGeolocator(landmarks, RttProber(latency, probes=4, seed=7))
        result = sp.geolocate({landmarks[0].name: 12.0})
        assert result.landmark_name == landmarks[0].name
