"""Tests for the full study report renderer."""

import pytest

from repro.core.report import render_study_report


@pytest.fixture(scope="module")
def report_text(pipeline):
    return render_study_report(pipeline)


class TestReport:
    def test_all_sections_present(self, report_text):
        for heading in (
            "Datasets (Table I)",
            "AS location of servers (Table II)",
            "Server geolocation (Table III, Figures 2-3)",
            "Flows and sessions (Figures 4-6)",
            "Preferred data centers (Figures 7-9)",
            "DNS vs. application-layer redirection (Figure 10)",
            "DNS-level load balancing (Figure 11)",
            "Subnet divergence (Figure 12)",
            "Hot spots and cold content",
        ):
            assert heading in report_text, heading

    def test_all_datasets_mentioned(self, report_text):
        for name in ("US-Campus", "EU1-Campus", "EU1-ADSL", "EU1-FTTH", "EU2"):
            assert name in report_text

    def test_key_findings_visible(self, report_text):
        # The preferred data centers appear by cluster id.
        assert "cluster-" in report_text
        # Hot videos section lists actual video ids (11-char tokens).
        assert "hot video " in report_text
        assert "peak max/avg ratio" in report_text

    def test_unknown_hot_dataset_rejected(self, pipeline):
        with pytest.raises(KeyError):
            render_study_report(pipeline, hot_dataset="Mars")

    def test_report_is_plain_text(self, report_text):
        assert all(ord(c) < 0x2500 for c in report_text)
        assert len(report_text.splitlines()) > 40
