"""Golden-digest regression test.

``tests/golden/study_scale_0.01.digests`` pins the per-dataset
content digests of the paper study at ``--scale 0.01 --seed 7`` (the
CLI defaults).  Any change to simulator or trace-shaping behaviour shows
up here as a digest drift; refresh the fixture deliberately with
``scripts/update_golden.sh`` and call the change out in review.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.sim.driver import run_all

GOLDEN = Path(__file__).parent / "golden" / "study_scale_0.01.digests"

SCALE = 0.01
SEED = 7


def golden_lines():
    return [
        line.strip()
        for line in GOLDEN.read_text(encoding="ascii").splitlines()
        if line.strip()
    ]


@pytest.fixture(scope="module")
def current_digests():
    results = run_all(scale=SCALE, seed=SEED)
    return {
        name: result.dataset.content_digest()
        for name, result in results.items()
    }


def test_fixture_is_well_formed():
    lines = golden_lines()
    assert lines, "golden fixture is empty"
    for line in lines:
        parts = line.split()
        assert len(parts) == 3 and parts[0] == "digest", line
        assert len(parts[2]) == 64 and int(parts[2], 16) >= 0, line
    names = [line.split()[1] for line in lines]
    assert names == sorted(names)


def test_digests_match_golden(current_digests):
    expected = {
        line.split()[1]: line.split()[2] for line in golden_lines()
    }
    assert set(current_digests) == set(expected)
    drifted = {
        name: (expected[name], digest)
        for name, digest in current_digests.items()
        if digest != expected[name]
    }
    assert not drifted, (
        "dataset digests drifted from tests/golden/study_scale_0.01.digests "
        f"(run scripts/update_golden.sh if intentional): {drifted}"
    )


def test_digests_are_run_stable(current_digests):
    again = {
        name: result.dataset.content_digest()
        for name, result in run_all(scale=SCALE, seed=SEED).items()
    }
    assert again == current_digests
