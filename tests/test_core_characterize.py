"""Tests for trace characterisation."""

import pytest

from repro.core.characterize import (
    characterize,
    client_volume_cdf,
    hourly_volume_series,
    popularity_cdf,
    top_share,
    video_popularity,
)
from repro.trace.records import FlowRecord


def flow(src=1, vid="V" * 11, t0=0.0, nbytes=50_000):
    return FlowRecord(src_ip=src, dst_ip=9, num_bytes=nbytes,
                      t_start=t0, t_end=t0 + 1.0, video_id=vid, resolution="360p")


class TestCounting:
    def test_video_popularity_ignores_control_flows(self):
        records = [flow(vid="A" * 11), flow(vid="A" * 11),
                   flow(vid="B" * 11, nbytes=500)]
        counts = video_popularity(records)
        assert counts == {"A" * 11: 2}

    def test_popularity_cdf(self):
        records = [flow(vid="A" * 11)] * 3 + [flow(vid="B" * 11)]
        cdf = popularity_cdf(records)
        assert cdf.max == 3
        assert cdf.min == 1

    def test_popularity_cdf_empty(self):
        with pytest.raises(ValueError):
            popularity_cdf([flow(nbytes=100)])

    def test_client_volume(self):
        records = [flow(src=1, nbytes=100), flow(src=1, nbytes=200),
                   flow(src=2, nbytes=1000)]
        cdf = client_volume_cdf(records)
        assert cdf.max == 1000
        assert cdf.min == 300

    def test_top_share(self):
        counts = {f"v{i}": 1 for i in range(99)}
        counts["hot"] = 101
        assert top_share(counts, 0.01) == pytest.approx(101 / 200)
        with pytest.raises(ValueError):
            top_share({}, 0.01)
        with pytest.raises(ValueError):
            top_share(counts, 0.0)


class TestOnSimulatedTrace:
    def test_profile_shapes(self, eu1_adsl):
        profile = characterize(eu1_adsl.dataset)
        assert profile.distinct_videos > 1000
        # Zipf tail: many videos requested exactly once.
        assert profile.singleton_video_fraction > 0.4
        # Head concentration: top 1 % of videos carries a large share.
        assert profile.top_percentile_share > 0.03
        assert profile.median_flow_bytes > 100_000
        # Day/night pattern.
        assert profile.peak_to_trough > 3.0

    def test_hourly_series_length(self, eu1_adsl):
        series = hourly_volume_series(eu1_adsl.dataset)
        assert len(series) == eu1_adsl.dataset.num_hours
        assert series.max_y() > 0

    def test_heavy_client_skew(self, eu1_adsl):
        cdf = client_volume_cdf(eu1_adsl.dataset.records)
        assert cdf.quantile(0.95) > 4 * cdf.median
