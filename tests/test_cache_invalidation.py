"""Cache-invalidation properties and cross-backend cache sharing.

The soundness contract: a stage key changes exactly when the stage's output
could change.  Any perturbation of the scenario parameters, the master
seed, or the code-version tag must therefore produce a *different* key
(miss), while the identical invocation — from any execution backend — must
produce the *same* key (hit), with byte-identical results served back.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.artifacts.store import ArtifactStore, reset_default_store
from repro.exec.executor import ParallelExecutor
from repro.sim import driver
from repro.sim.driver import run_all, simulate_week
from repro.sim.scenarios import PAPER_SCENARIOS

SPEC = PAPER_SCENARIOS["EU1-FTTH"]
BASE = dict(scale=0.004, seed=7, duration_s=86400.0, policy_kind="preferred")


def base_key():
    return simulate_week.cache_key(SPEC, **BASE)


@pytest.fixture
def cache_env(monkeypatch, tmp_path):
    """A live cache in a fresh temp dir (the suite default is off)."""
    monkeypatch.setenv("REPRO_CACHE", "on")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    reset_default_store()
    driver.clear_cache()
    yield tmp_path
    reset_default_store()
    driver.clear_cache()


class TestKeyInvalidation:
    """Key-level properties: cheap, no simulation runs."""

    def test_identical_inputs_identical_key(self):
        assert base_key() == base_key()

    @pytest.mark.parametrize("param,value", [
        ("scale", 0.005),
        ("seed", 8),
        ("duration_s", 86401.0),
        ("policy_kind", "proportional"),
    ])
    def test_any_run_parameter_invalidates(self, param, value):
        changed = dict(BASE, **{param: value})
        assert simulate_week.cache_key(SPEC, **changed) != base_key()

    def test_miss_probability_invalidates(self):
        assert (simulate_week.cache_key(SPEC, **BASE, miss_probability=0.5)
                != base_key())

    @pytest.mark.parametrize("field", [
        f.name for f in dataclasses.fields(type(SPEC))
        if f.name not in ("name", "vantage_city", "access", "subnets",
                          "detour_pins", "client_block",
                          "extra_dcs", "removed_dcs")
    ])
    def test_every_numeric_spec_field_invalidates(self, field):
        value = getattr(SPEC, field)
        if isinstance(value, bool):
            changed = dataclasses.replace(SPEC, **{field: not value})
        elif isinstance(value, (int, float)):
            changed = dataclasses.replace(SPEC, **{field: value + 1})
        else:
            pytest.skip(f"non-numeric field {field}")
        assert simulate_week.cache_key(changed, **BASE) != base_key()

    def test_spec_name_and_structure_invalidate(self):
        renamed = dataclasses.replace(SPEC, name="EU1-FTTH-b")
        assert simulate_week.cache_key(renamed, **BASE) != base_key()
        pinned = dataclasses.replace(SPEC, detour_pins=(("dc-x", 5.0),))
        assert simulate_week.cache_key(pinned, **BASE) != base_key()
        # The topology axis (spec-layer "datacenter" set deltas) keys too.
        grown = dataclasses.replace(SPEC, extra_dcs=(("Oslo", 48),))
        assert simulate_week.cache_key(grown, **BASE) != base_key()
        shrunk = dataclasses.replace(SPEC, removed_dcs=("Miami",))
        assert simulate_week.cache_key(shrunk, **BASE) != base_key()

    def test_code_version_invalidates(self, monkeypatch):
        before = base_key()
        monkeypatch.setenv("REPRO_CODE_VERSION", "999-test")
        assert base_key() != before

    def test_different_scenarios_never_collide(self):
        keys = {simulate_week.cache_key(spec, **BASE)
                for spec in PAPER_SCENARIOS.values()}
        assert len(keys) == len(PAPER_SCENARIOS)


class TestStoreInvalidation:
    """The key properties, observed through an actual store."""

    def test_perturbed_params_miss(self, cache_env):
        store = ArtifactStore(cache_env)
        store.put(base_key(), "week", stage="sim/run_week")
        assert store.get(base_key(), stage="sim/run_week") == "week"
        for param, value in (("seed", 8), ("scale", 0.005)):
            key = simulate_week.cache_key(SPEC, **dict(BASE, **{param: value}))
            assert store.get(key, "MISS", stage="sim/run_week") == "MISS"


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_warm_hits_and_identical_bytes_across_backends(cache_env, backend):
    """One cold serial run warms every backend, byte for byte.

    Process workers inherit ``REPRO_CACHE_DIR`` through the environment,
    so all backends resolve against the same temp store.
    """
    names = ("EU1-FTTH", "US-Campus")
    cold = run_all(names=names, executor=ParallelExecutor("serial"), **BASE)
    digests = {name: cold[name].dataset.content_digest() for name in names}

    driver.clear_cache()  # force the L1 memo out of the way: disk must serve
    store = ArtifactStore(cache_env)
    before = store.lifetime_counters()["stages"]["sim/run_week"]

    warm = run_all(names=names, executor=ParallelExecutor(backend, max_workers=2),
                   **BASE)
    for name in names:
        assert warm[name].dataset.content_digest() == digests[name]

    after = store.lifetime_counters()["stages"]["sim/run_week"]
    assert after["hits"] - before["hits"] == len(names)
    assert after["puts"] == before["puts"]  # nothing was recomputed
