"""Golden-digest regression test for the monitor timeline.

``tests/golden/monitor_0.01.digests`` pins the per-epoch snapshot
digests of ``repro monitor`` over the built-in demo evolution at
``--scale 0.01 --seed 7`` (8 one-day epochs).  Any change to the
simulator, the spec-application path, the streaming accumulator, or the
probe campaign shows up here as a digest drift; refresh the fixture
deliberately with ``scripts/update_golden.sh`` and call the change out
in review.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.monitor import run_monitor, standard_evolution

GOLDEN = Path(__file__).parent / "golden" / "monitor_0.01.digests"

SCALE = 0.01
SEED = 7
EPOCHS = 8


def golden_lines():
    return [
        line.strip()
        for line in GOLDEN.read_text(encoding="ascii").splitlines()
        if line.strip()
    ]


@pytest.fixture(scope="module")
def report():
    return run_monitor("EU1-ADSL", plan=standard_evolution(), epochs=EPOCHS,
                       scale=SCALE, seed=SEED)


def test_fixture_is_well_formed():
    lines = golden_lines()
    assert len(lines) == EPOCHS
    for index, line in enumerate(lines):
        parts = line.split()
        assert len(parts) == 3 and parts[0] == "digest", line
        assert parts[1] == f"epoch{index:02d}", line
        assert len(parts[2]) == 64 and int(parts[2], 16) >= 0, line


def test_digests_match_golden(report):
    expected = {line.split()[1]: line.split()[2] for line in golden_lines()}
    current = {
        f"epoch{row.epoch:02d}": row.digest for row in report.rows
    }
    assert set(current) == set(expected)
    drifted = {
        name: (expected[name], digest)
        for name, digest in current.items()
        if digest != expected[name]
    }
    assert not drifted, (
        "epoch digests drifted from tests/golden/monitor_0.01.digests "
        f"(run scripts/update_golden.sh if intentional): {drifted}"
    )


def test_detection_quality_pinned(report):
    # The acceptance bar the golden world must keep clearing.
    assert report.score.precision >= 0.9
    assert report.score.recall >= 0.9
    assert report.alarm_epochs() == list(report.truth) == [2, 4, 6]
