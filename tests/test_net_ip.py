"""Tests for IPv4 primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.ip import (
    IPv4Network,
    Ipv4Allocator,
    format_ip,
    ip_in_network,
    parse_ip,
    parse_network,
    slash24_of,
)


class TestParseFormat:
    def test_parse_known(self):
        assert parse_ip("0.0.0.0") == 0
        assert parse_ip("255.255.255.255") == (1 << 32) - 1
        assert parse_ip("173.194.0.1") == (173 << 24) | (194 << 16) | 1

    def test_format_known(self):
        assert format_ip(0) == "0.0.0.0"
        assert format_ip((1 << 32) - 1) == "255.255.255.255"

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=200)
    def test_roundtrip(self, ip):
        assert parse_ip(format_ip(ip)) == ip

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "01.2.3.4", "", "1..2.3"]
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_ip(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ip(-1)
        with pytest.raises(ValueError):
            format_ip(1 << 32)

    def test_slash24(self):
        assert slash24_of(parse_ip("10.1.2.3")) == parse_ip("10.1.2.0")
        assert slash24_of(parse_ip("10.1.2.0")) == parse_ip("10.1.2.0")


class TestNetwork:
    def test_basic_properties(self):
        net = parse_network("192.168.4.0/22")
        assert net.num_addresses == 1024
        assert format_ip(net.first) == "192.168.4.0"
        assert format_ip(net.last) == "192.168.7.255"

    def test_contains(self):
        net = parse_network("10.0.0.0/8")
        assert parse_ip("10.200.3.4") in net
        assert parse_ip("11.0.0.0") not in net
        assert ip_in_network(parse_ip("10.0.0.1"), net)

    def test_rejects_host_bits(self):
        with pytest.raises(ValueError):
            IPv4Network(parse_ip("10.0.0.1"), 24)

    def test_rejects_bad_prefix_length(self):
        with pytest.raises(ValueError):
            IPv4Network(0, 33)

    def test_subnets(self):
        net = parse_network("10.0.0.0/23")
        subs = list(net.subnets(24))
        assert len(subs) == 2
        assert str(subs[0]) == "10.0.0.0/24"
        assert str(subs[1]) == "10.0.1.0/24"

    def test_subnets_shorter_prefix_rejected(self):
        with pytest.raises(ValueError):
            list(parse_network("10.0.0.0/24").subnets(23))

    def test_hosts_count(self):
        net = parse_network("10.0.0.0/30")
        assert len(list(net.hosts())) == 4

    def test_parse_network_malformed(self):
        with pytest.raises(ValueError):
            parse_network("10.0.0.0")


class TestAllocator:
    def test_sequential_addresses(self):
        alloc = Ipv4Allocator((parse_network("10.0.0.0/30"),))
        ips = [alloc.allocate_address() for _ in range(4)]
        assert ips == [parse_ip("10.0.0.0"), parse_ip("10.0.0.1"),
                       parse_ip("10.0.0.2"), parse_ip("10.0.0.3")]
        with pytest.raises(RuntimeError):
            alloc.allocate_address()

    def test_network_allocation_aligned(self):
        alloc = Ipv4Allocator((parse_network("10.0.0.0/16"),))
        alloc.allocate_address()  # misalign the cursor
        net = alloc.allocate_network(24)
        assert net.network % 256 == 0
        assert net.prefix_len == 24

    def test_network_allocation_distinct(self):
        alloc = Ipv4Allocator((parse_network("10.0.0.0/16"),))
        nets = [alloc.allocate_network(24) for _ in range(256)]
        assert len({n.network for n in nets}) == 256
        with pytest.raises(RuntimeError):
            alloc.allocate_network(24)

    def test_spans_multiple_pools(self):
        alloc = Ipv4Allocator(
            (parse_network("10.0.0.0/24"), parse_network("10.0.2.0/24"))
        )
        nets = [alloc.allocate_network(24) for _ in range(2)]
        assert str(nets[0]) == "10.0.0.0/24"
        assert str(nets[1]) == "10.0.2.0/24"

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            Ipv4Allocator(())

    def test_oversized_request(self):
        alloc = Ipv4Allocator((parse_network("10.0.0.0/24"),))
        with pytest.raises(RuntimeError):
            alloc.allocate_network(16)
