"""Tests for the longitudinal monitoring subsystem (:mod:`repro.monitor`).

Unit coverage for evolution plans, the edge-cloud accumulator, snapshot
construction, clustering, the pattern-dissimilarity metric, alarms and
scoring — plus integration coverage of :func:`repro.monitor.run_monitor`
(static vs evolving vs faulted worlds, epoch caching) and the ``repro
monitor`` / ``repro trace summary --json`` CLI surfaces.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main as cli_main
from repro.monitor import (
    DEFAULT_THRESHOLD,
    Alarm,
    EpochSnapshot,
    EvolutionPlan,
    EvolutionStep,
    STATIC_PLAN,
    build_epoch_snapshot,
    cluster_snapshot,
    detect_alarms,
    load_evolution,
    pattern_dissimilarity,
    render_timeline,
    run_monitor,
    score_detection,
    standard_evolution,
)
from repro.spec.info import SpecError
from repro.spec.model import Spec, par_delta
from repro.stream.accumulators import EdgeCloudAccumulator
from repro.stream.events import StreamWindow
from repro.trace.columnar import FlowTable
from repro.trace.records import FlowRecord

SCALE = 0.01
SEED = 7
EPOCH_S = 86400.0


def run_cli(*argv):
    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


# A single deterministic planted change: the preferred mapping flips at
# epoch 2.  Kept small so integration fixtures stay cheap.
def planted_plan() -> EvolutionPlan:
    return EvolutionPlan(steps=(
        EvolutionStep(
            epoch=2,
            spec=par_delta(preferred_override="dc-frankfurt"),
            label="preferred flip",
        ),
    ))


# --------------------------------------------------------------- evolution


class TestEvolutionPlan:
    def test_step_rejects_epoch_zero(self):
        with pytest.raises(SpecError):
            EvolutionStep(epoch=0, spec=par_delta(policy="proportional"))

    def test_step_rejects_empty_spec(self):
        with pytest.raises(SpecError):
            EvolutionStep(epoch=3, spec=Spec())

    def test_steps_sorted_by_epoch(self):
        plan = EvolutionPlan(steps=(
            EvolutionStep(epoch=5, spec=par_delta(policy="proportional")),
            EvolutionStep(epoch=2, spec=par_delta(preferred_override="dc-frankfurt")),
        ))
        assert [s.epoch for s in plan.steps] == [2, 5]

    def test_spec_at_is_cumulative(self):
        plan = planted_plan()
        assert plan.spec_at(1).is_empty
        applied = dict(plan.spec_at(2).add.pars)
        assert applied["preferred_override"] == "dc-frankfurt"
        assert dict(plan.spec_at(7).add.pars) == applied

    def test_change_epochs_horizon(self):
        plan = standard_evolution()
        assert plan.change_epochs() == (2, 4, 6)
        assert plan.change_epochs(5) == (2, 4)
        assert plan.change_epochs(1) == ()

    def test_labels_at(self):
        plan = planted_plan()
        assert plan.labels_at(2) == ("preferred flip",)
        assert plan.labels_at(3) == ()

    def test_static_plan(self):
        assert STATIC_PLAN.is_static
        assert STATIC_PLAN.change_epochs(100) == ()
        assert STATIC_PLAN.spec_at(5).is_empty

    def test_json_round_trip(self):
        plan = standard_evolution()
        again = EvolutionPlan.from_json(plan.to_json())
        assert again == plan
        assert again.cache_fingerprint() == plan.cache_fingerprint()

    def test_from_json_rejects_unknown_keys(self):
        with pytest.raises(SpecError):
            EvolutionPlan.from_json('{"steps": [], "extra": 1}')
        with pytest.raises(SpecError):
            EvolutionPlan.from_json('{"steps": [{"epoch": 1, "what": 2}]}')

    def test_load_evolution(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(planted_plan().to_json(), encoding="utf-8")
        assert load_evolution(str(path)) == planted_plan()

    def test_contradictory_steps_rejected(self):
        # Step 1 switches the policy; step 2 *requires* the old one —
        # the schedule can never apply and must fail at construction.
        with pytest.raises(SpecError):
            EvolutionPlan(steps=(
                EvolutionStep(epoch=1, spec=par_delta(policy="proportional")),
                EvolutionStep(epoch=2, spec=Spec.from_json_dict(
                    {"require": {"pars": {"policy": "preferred"}},
                     "add": {"pars": {"spill_probability": 0.1}}}
                )),
            ))


# ------------------------------------------------------------- accumulator


def _window(records):
    return StreamWindow(index=0, t_lo=0.0, t_hi=3600.0,
                        table=FlowTable(records))


def _flow(src, dst, num_bytes):
    return FlowRecord(src_ip=src, dst_ip=dst, num_bytes=num_bytes,
                      t_start=0.0, t_end=1.0, video_id="v" * 11,
                      resolution="360p")


class TestEdgeCloudAccumulator:
    def test_cells_and_totals(self):
        acc = EdgeCloudAccumulator(lambda ip: "Net-1" if ip < 100 else "Net-2")
        acc.observe_window(_window([
            _flow(1, 0x01020304, 1000),
            _flow(2, 0x01020305, 500),   # same /24 as above
            _flow(200, 0x0A000001, 300),
        ]))
        acc.observe_window(_window([_flow(3, 0x01020399, 50)]))
        cells = acc.cells()
        assert cells == sorted(cells)
        by_key = {(s, p): (b, f) for s, p, b, f in cells}
        assert by_key[("Net-1", 0x010203)] == (1550, 3)
        assert by_key[("Net-2", 0x0A0000)] == (300, 1)
        assert acc.bytes_total == 1850
        assert acc.flows_total == 4

    def test_unknown_subnet_skipped(self):
        acc = EdgeCloudAccumulator(lambda ip: None)
        acc.observe_window(_window([_flow(1, 0x01020304, 1000)]))
        assert acc.cells() == []
        assert acc.flows_total == 0

    def test_representative_ip_is_lowest(self):
        acc = EdgeCloudAccumulator(lambda ip: "Net-1")
        acc.observe_window(_window([
            _flow(1, 0x01020310, 1), _flow(1, 0x01020304, 1),
        ]))
        assert acc.representative_ip(0x010203) == 0x01020304
        with pytest.raises(KeyError):
            acc.representative_ip(0x999999)

    def test_prefix_len_validated(self):
        with pytest.raises(ValueError):
            EdgeCloudAccumulator(lambda ip: "x", prefix_len=0)


# ---------------------------------------------------------------- snapshot


def _tiny_world():
    # A fresh world per snapshot: worlds are stateful once streamed
    # (exactly why run_monitor builds one per epoch).
    from repro.sim.scenarios import PAPER_SCENARIOS, build_world

    return build_world(PAPER_SCENARIOS["EU1-ADSL"], scale=0.005, seed=SEED,
                       duration_s=EPOCH_S)


@pytest.fixture(scope="module")
def tiny_snapshot():
    return build_epoch_snapshot(_tiny_world(), epoch=0, rtt_seed=123)


class TestEpochSnapshot:
    def test_shape(self, tiny_snapshot):
        snap = tiny_snapshot
        assert snap.name == "EU1-ADSL"
        assert snap.flows_total == sum(c[3] for c in snap.cells)
        assert snap.bytes_total == sum(c[2] for c in snap.cells)
        assert snap.probes_lost == 0
        measured = dict(snap.rtt_ms)
        prefixes = {c[1] for c in snap.cells}
        assert set(measured) <= prefixes

    def test_shares_sum_to_one(self, tiny_snapshot):
        assert sum(tiny_snapshot.prefix_shares().values()) == pytest.approx(1.0)
        assert sum(tiny_snapshot.subnet_shares().values()) == pytest.approx(1.0)

    def test_digest_stable_and_json(self, tiny_snapshot):
        again = build_epoch_snapshot(_tiny_world(), epoch=0, rtt_seed=123)
        assert again.digest() == tiny_snapshot.digest()
        doc = json.loads(tiny_snapshot.to_json())
        assert doc["epoch"] == 0
        assert doc["flows_total"] == tiny_snapshot.flows_total

    def test_rtt_seed_changes_digest(self, tiny_snapshot):
        other = build_epoch_snapshot(_tiny_world(), epoch=0, rtt_seed=124)
        assert other.digest() != tiny_snapshot.digest()

    def test_prefix_str_dotted(self, tiny_snapshot):
        text = tiny_snapshot.prefix_str(tiny_snapshot.cells[0][1])
        assert text.endswith(f"/{tiny_snapshot.prefix_len}")


# -------------------------------------------------------------- clustering


def _snap(cells, rtt_ms):
    return EpochSnapshot(
        name="t", epoch=0, duration_s=1.0, prefix_len=24,
        cells=tuple(cells), rtt_ms=tuple(sorted(rtt_ms.items())),
        bytes_total=sum(c[2] for c in cells),
        flows_total=sum(c[3] for c in cells),
        probes_lost=0,
    )


class TestClustering:
    def test_gap_splits_clouds(self):
        snap = _snap(
            [("Net-1", 1, 600, 6), ("Net-1", 2, 300, 3), ("Net-1", 3, 100, 1)],
            {1: 10.0, 2: 12.0, 3: 40.0},
        )
        clustered = cluster_snapshot(snap, rtt_gap_ms=8.0)
        assert [set(c.prefixes) for c in clustered.clouds] == [{1, 2}, {3}]
        near = clustered.clouds[0]
        # Byte-weighted centroid of 10ms (600 B) and 12ms (300 B).
        assert near.rtt_ms == pytest.approx((600 * 10 + 300 * 12) / 900, abs=1e-3)
        assert clustered.dominant is near

    def test_unprobed_prefixes_pool(self):
        snap = _snap(
            [("Net-1", 1, 500, 5), ("Net-1", 2, 250, 2), ("Net-1", 3, 250, 2)],
            {1: 10.0},
        )
        clustered = cluster_snapshot(snap)
        unprobed = [c for c in clustered.clouds if c.rtt_ms is None]
        assert len(unprobed) == 1
        assert set(unprobed[0].prefixes) == {2, 3}
        assert unprobed[0].share == pytest.approx(0.5)

    def test_share_ordering(self):
        snap = _snap(
            [("Net-1", 1, 100, 1), ("Net-1", 2, 900, 9)],
            {1: 10.0, 2: 50.0},
        )
        clustered = cluster_snapshot(snap)
        assert clustered.clouds[0].share > clustered.clouds[1].share

    def test_bad_gap(self):
        snap = _snap([("Net-1", 1, 1, 1)], {1: 1.0})
        with pytest.raises(ValueError):
            cluster_snapshot(snap, rtt_gap_ms=0.0)

    def test_empty_snapshot(self):
        clustered = cluster_snapshot(_snap([], {}))
        assert clustered.clouds == ()
        assert clustered.dominant is None


# ----------------------------------------------------------- dissimilarity


def _clustered(cells, rtt_ms):
    return cluster_snapshot(_snap(cells, rtt_ms))


class TestDissimilarity:
    def test_identical_is_zero(self):
        a = _clustered([("Net-1", 1, 800, 8), ("Net-1", 2, 200, 2)],
                       {1: 10.0, 2: 30.0})
        assert pattern_dissimilarity(a, a) == 0.0

    def test_disjoint_is_one(self):
        a = _clustered([("Net-1", 1, 1000, 10)], {1: 10.0})
        b = _clustered([("Net-1", 2, 1000, 10)], {2: 10.0})
        assert pattern_dissimilarity(a, b) == pytest.approx(1.0)

    def test_symmetric(self):
        a = _clustered([("Net-1", 1, 700, 7), ("Net-1", 2, 300, 3)],
                       {1: 10.0, 2: 30.0})
        b = _clustered([("Net-1", 1, 300, 3), ("Net-1", 2, 700, 7)],
                       {1: 12.0, 2: 28.0})
        assert pattern_dissimilarity(a, b) == pytest.approx(
            pattern_dissimilarity(b, a))

    def test_rtt_drift_counts(self):
        a = _clustered([("Net-1", 1, 1000, 10)], {1: 10.0})
        b = _clustered([("Net-1", 1, 1000, 10)], {1: 35.0})
        # Same volume everywhere; only the centroid moved 25 ms of the
        # 50 ms full-migration scale.
        assert pattern_dissimilarity(a, b) == pytest.approx(0.5)

    def test_probe_loss_cannot_increase_distance(self):
        cells_a = [("Net-1", 1, 600, 6), ("Net-1", 2, 400, 4)]
        cells_b = [("Net-1", 1, 500, 5), ("Net-1", 2, 500, 5)]
        full = pattern_dissimilarity(
            _clustered(cells_a, {1: 10.0, 2: 30.0}),
            _clustered(cells_b, {1: 14.0, 2: 33.0}),
        )
        # Losing either side's probes (degradation) must never read as
        # *more* change.
        for rtt_a, rtt_b in (
            ({1: 10.0}, {1: 14.0, 2: 33.0}),
            ({1: 10.0, 2: 30.0}, {2: 33.0}),
            ({}, {}),
        ):
            degraded = pattern_dissimilarity(
                _clustered(cells_a, rtt_a), _clustered(cells_b, rtt_b))
            assert degraded <= full + 1e-12


# ------------------------------------------------------- alarms and scoring


class TestDetection:
    def test_alarm_epoch_mapping(self):
        # distances[i] compares epochs i and i+1: an alarm points at the
        # first epoch under the new pattern.
        alarms = detect_alarms([0.1, 0.9, 0.2, 0.8], threshold=0.5)
        assert alarms == [Alarm(epoch=2, distance=0.9),
                          Alarm(epoch=4, distance=0.8)]

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            detect_alarms([0.5], threshold=0.0)

    def test_score_perfect(self):
        score = score_detection([2, 4], [2, 4])
        assert score.precision == 1.0 and score.recall == 1.0
        assert score.f1 == 1.0
        assert score.hits == (2, 4)

    def test_score_mixed(self):
        score = score_detection([2, 3], [2, 5])
        assert score.hits == (2,)
        assert score.false_alarms == (3,)
        assert score.misses == (5,)
        assert score.precision == pytest.approx(0.5)
        assert score.recall == pytest.approx(0.5)

    def test_score_empty_cases(self):
        assert score_detection([], []).precision == 1.0
        assert score_detection([], []).recall == 1.0
        assert score_detection([], [3]).recall == 0.0
        assert score_detection([3], []).precision == 0.0

    def test_score_as_dict(self):
        doc = score_detection([2], [2]).as_dict()
        assert doc == {"hits": [2], "misses": [], "false_alarms": [],
                       "precision": 1.0, "recall": 1.0, "f1": 1.0}


# -------------------------------------------------------------- run_monitor


@pytest.fixture(scope="module")
def static_report():
    return run_monitor("EU1-ADSL", plan=STATIC_PLAN, epochs=4,
                       epoch_s=EPOCH_S, scale=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def planted_report():
    return run_monitor("EU1-ADSL", plan=planted_plan(), epochs=4,
                       epoch_s=EPOCH_S, scale=SCALE, seed=SEED)


class TestRunMonitor:
    def test_static_world_no_alarms(self, static_report):
        assert static_report.alarm_epochs() == []
        assert static_report.score.precision == 1.0
        assert static_report.score.recall == 1.0

    def test_planted_change_detected_at_right_epoch(self, planted_report):
        assert planted_report.alarm_epochs() == [2]
        assert planted_report.truth == (2,)
        assert planted_report.score.f1 == 1.0

    def test_rows_shape(self, planted_report):
        rows = planted_report.rows
        assert [r.epoch for r in rows] == [0, 1, 2, 3]
        assert rows[0].distance is None
        assert all(r.distance is not None for r in rows[1:])
        assert rows[2].alarm and rows[2].changes == ("preferred flip",)
        assert all(len(r.digest) == 64 for r in rows)
        assert all(not r.cached for r in rows)
        assert all(r.degradation == {} for r in rows)

    def test_static_epochs_differ_only_by_sampling(self, static_report):
        distances = [r.distance for r in static_report.rows[1:]]
        assert max(distances) < DEFAULT_THRESHOLD / 2

    def test_as_dict_shape(self, planted_report):
        doc = planted_report.as_dict()
        assert doc["epochs"] == 4 and not doc["static"]
        assert doc["verdict"]["alarms"] == [2]
        assert doc["verdict"]["score"]["f1"] == 1.0
        assert doc["epochs_cached"] == 0 and doc["epochs_computed"] == 4
        assert len(doc["timeline"]) == 4
        json.dumps(doc)  # must be JSON-clean

    def test_digest_lines(self, planted_report):
        lines = planted_report.digest_lines()
        assert len(lines) == 4
        assert all(line.startswith("digest epoch") for line in lines)

    def test_render_timeline(self, planted_report):
        text = render_timeline(planted_report)
        assert "ALARM" in text
        assert "^ scheduled: preferred flip" in text
        assert "precision 1.00  recall 1.00" in text

    def test_epochs_validated(self):
        with pytest.raises(ValueError):
            run_monitor("EU1-ADSL", epochs=0)
        with pytest.raises(ValueError):
            run_monitor("EU1-ADSL", epoch_s=0.0)

    def test_warm_rerun_extends_cached_prefix(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "on")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cold = run_monitor("EU1-ADSL", plan=planted_plan(), epochs=3,
                           epoch_s=EPOCH_S, scale=SCALE, seed=SEED)
        assert [r.cached for r in cold.rows] == [False, False, False]
        warm = run_monitor("EU1-ADSL", plan=planted_plan(), epochs=4,
                           epoch_s=EPOCH_S, scale=SCALE, seed=SEED)
        assert [r.cached for r in warm.rows] == [True, True, True, False]
        assert [r.digest for r in warm.rows[:3]] == [r.digest for r in cold.rows]
        assert warm.alarm_epochs() == [2]
        # Cached epochs key on the composed spec: a different plan with
        # the same base must not reuse them at its changed epochs.
        other = run_monitor("EU1-ADSL", plan=STATIC_PLAN, epochs=3,
                            epoch_s=EPOCH_S, scale=SCALE, seed=SEED)
        assert [r.cached for r in other.rows] == [True, True, False]


class TestRunMonitorFaulted:
    @pytest.fixture()
    def probe_faults(self):
        from repro.faults import report as degradation
        from repro.faults.plan import FaultPlan, clear_current_plan, set_current_plan

        degradation.reset()
        set_current_plan(FaultPlan(probe_loss=0.3))
        yield
        clear_current_plan()
        degradation.reset()

    def test_degradation_is_not_change(self, probe_faults, static_report):
        faulted = run_monitor("EU1-ADSL", plan=STATIC_PLAN, epochs=4,
                              epoch_s=EPOCH_S, scale=SCALE, seed=SEED)
        assert faulted.alarm_epochs() == []
        assert faulted.score.precision == 1.0 and faulted.score.recall == 1.0
        lost = sum(r.probes_lost for r in faulted.rows)
        assert lost > 0, "fault plan injected nothing; test is vacuous"
        degraded_rows = [r for r in faulted.rows if r.degradation]
        assert degraded_rows, "per-epoch degradation counters missing"
        text = render_timeline(faulted)
        assert "probes_lost=" in text
        # The clean baseline saw no degradation at all.
        assert all(r.degradation == {} for r in static_report.rows)


# --------------------------------------------------------------------- CLI


class TestMonitorCLI:
    def test_timeline_output(self):
        code, text = run_cli(
            "monitor", "--scale", str(SCALE), "--epochs", "4", "--static",
        )
        assert code == 0
        assert text.startswith("MONITOR EU1-ADSL")
        assert "alarms at epochs: (none)" in text

    def test_json_output(self):
        code, text = run_cli(
            "monitor", "--scale", str(SCALE), "--epochs", "4", "--static",
            "--json",
        )
        assert code == 0
        doc = json.loads(text)
        assert doc["static"] is True
        assert doc["verdict"]["alarms"] == []
        assert len(doc["timeline"]) == 4

    def test_plan_file_and_digests(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(planted_plan().to_json(), encoding="utf-8")
        code, text = run_cli(
            "monitor", "--scale", str(SCALE), "--epochs", "3",
            "--plan", str(path), "--digests",
        )
        assert code == 0
        assert "^ scheduled: preferred flip" in text
        digests = [line for line in text.splitlines()
                   if line.startswith("digest epoch")]
        assert len(digests) == 3

    def test_bad_plan_fails_fast(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"steps": [{"epoch": 0, "spec": {}}]}',
                        encoding="utf-8")
        code, _ = run_cli("monitor", "--plan", str(path))
        assert code == 2
        code, _ = run_cli("monitor", "--plan", str(tmp_path / "missing.json"))
        assert code == 2

    def test_trace_summary_json(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        code, _ = run_cli(
            "monitor", "--scale", "0.005", "--epochs", "2", "--static",
        )
        assert code == 0
        traces = list(tmp_path.glob("trace_*.jsonl"))
        assert len(traces) == 1
        code, text = run_cli("trace", "summary", "--json", str(traces[0]))
        assert code == 0
        doc = json.loads(text)
        assert doc["counters"].get("monitor.epochs_computed") == 2
        names = {span["name"] for span in doc["spans"]}
        assert "cli/monitor" in names

        # --json and the table agree on the tree (same spans, same order).
        code, table = run_cli("trace", "summary", str(traces[0]))
        assert code == 0
        assert "monitor/run" in table
