"""Tests for flow classification and session construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flows import (
    CONTROL_FLOW_THRESHOLD_BYTES,
    classify_flows,
    detect_size_threshold,
    flow_size_cdf,
    is_video_flow,
)
from repro.core.sessions import (
    HISTOGRAM_BUCKETS,
    build_sessions,
    flows_per_session_histogram,
    gap_sensitivity,
    multi_flow_fraction,
)
from repro.trace.records import FlowRecord


def flow(src=1, vid="V" * 11, t0=0.0, dur=1.0, nbytes=5000, dst=100):
    return FlowRecord(
        src_ip=src, dst_ip=dst, num_bytes=nbytes,
        t_start=t0, t_end=t0 + dur, video_id=vid, resolution="360p",
    )


class TestClassification:
    def test_threshold_split(self):
        records = [flow(nbytes=999), flow(nbytes=1000), flow(nbytes=500000)]
        classes = classify_flows(records)
        assert len(classes.control) == 1
        assert len(classes.video) == 2
        assert classes.total == 3
        assert classes.control_fraction == pytest.approx(1 / 3)

    def test_is_video_flow(self):
        assert not is_video_flow(flow(nbytes=999))
        assert is_video_flow(flow(nbytes=1000))

    def test_empty_fraction_raises(self):
        with pytest.raises(ValueError):
            classify_flows([]).control_fraction

    def test_size_cdf(self):
        cdf = flow_size_cdf([flow(nbytes=n) for n in (100, 200, 5000)])
        assert cdf.fraction_below(250) == pytest.approx(2 / 3)

    def test_detect_threshold_finds_valley(self):
        records = (
            [flow(nbytes=n) for n in range(300, 900, 10)]
            + [flow(nbytes=n) for n in range(100_000, 5_000_000, 50_000)]
        )
        detected = detect_size_threshold(records)
        assert 900 <= detected <= 100_000

    def test_detect_threshold_needs_data(self):
        with pytest.raises(ValueError):
            detect_size_threshold([flow()])


class TestSessions:
    def test_redirect_grouped(self):
        records = [
            flow(t0=0.0, dur=0.1, nbytes=500),
            flow(t0=0.3, dur=10.0, nbytes=500000),
        ]
        sessions = build_sessions(records, gap_s=1.0)
        assert len(sessions) == 1
        assert sessions[0].num_flows == 2

    def test_interaction_split_at_small_gap(self):
        records = [
            flow(t0=0.0, dur=5.0),
            flow(t0=65.0, dur=5.0),  # resolution switch a minute later
        ]
        assert len(build_sessions(records, gap_s=1.0)) == 2
        assert len(build_sessions(records, gap_s=300.0)) == 1

    def test_different_videos_never_grouped(self):
        records = [flow(vid="A" * 11), flow(vid="B" * 11, t0=0.1)]
        assert len(build_sessions(records, gap_s=10.0)) == 2

    def test_different_clients_never_grouped(self):
        records = [flow(src=1), flow(src=2, t0=0.1)]
        assert len(build_sessions(records, gap_s=10.0)) == 2

    def test_overlapping_flows_grouped(self):
        records = [flow(t0=0.0, dur=30.0), flow(t0=5.0, dur=2.0)]
        sessions = build_sessions(records, gap_s=1.0)
        assert len(sessions) == 1

    def test_long_flow_extends_horizon(self):
        # flow B starts inside flow A; flow C starts just after A ends.
        records = [
            flow(t0=0.0, dur=100.0),
            flow(t0=10.0, dur=1.0),
            flow(t0=100.5, dur=1.0),
        ]
        sessions = build_sessions(records, gap_s=1.0)
        assert len(sessions) == 1
        assert sessions[0].num_flows == 3

    def test_gap_validation(self):
        with pytest.raises(ValueError):
            build_sessions([flow()], gap_s=0.0)

    def test_session_properties(self):
        records = [flow(t0=3700.0, dur=1.0, nbytes=100), flow(t0=3701.5, dur=5.0, nbytes=900)]
        session = build_sessions(records, gap_s=1.0)[0]
        assert session.t_start == 3700.0
        assert session.hour == 1
        assert session.total_bytes == 1000
        assert session.first_flow.num_bytes == 100
        assert session.last_flow.num_bytes == 900

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=3),          # client
                st.integers(min_value=0, max_value=2),          # video index
                st.floats(min_value=0.0, max_value=1000.0),     # start
                st.floats(min_value=0.1, max_value=30.0),       # duration
            ),
            min_size=1,
            max_size=40,
        ),
        st.floats(min_value=0.5, max_value=60.0),
    )
    @settings(max_examples=60)
    def test_partition_property(self, rows, gap):
        """Sessions partition the flows: every flow in exactly one session."""
        videos = ["A" * 11, "B" * 11, "C" * 11]
        records = [
            flow(src=c, vid=videos[v], t0=t0, dur=dur) for c, v, t0, dur in rows
        ]
        sessions = build_sessions(records, gap_s=gap)
        flattened = [f for s in sessions for f in s.flows]
        assert len(flattened) == len(records)
        assert {id(f) for f in flattened} == {id(f) for f in records}
        for s in sessions:
            keys = {(f.src_ip, f.video_id) for f in s.flows}
            assert len(keys) == 1
            starts = [f.t_start for f in s.flows]
            assert starts == sorted(starts)

    @given(st.floats(min_value=0.5, max_value=10.0), st.floats(min_value=20.0, max_value=100.0))
    @settings(max_examples=30)
    def test_larger_gap_never_more_sessions(self, small, large):
        records = [
            flow(t0=0.0, dur=1.0), flow(t0=5.0, dur=1.0), flow(t0=50.0, dur=1.0)
        ]
        assert len(build_sessions(records, large)) <= len(build_sessions(records, small))


class TestHistogram:
    def test_buckets_cover_everything(self):
        records = [flow(t0=i * 100.0) for i in range(12)]  # 12 separate sessions
        hist = flows_per_session_histogram(build_sessions(records, 1.0))
        assert set(hist) == set(HISTOGRAM_BUCKETS)
        assert sum(hist.values()) == pytest.approx(1.0)
        assert hist["1"] == pytest.approx(1.0)

    def test_overflow_bucket(self):
        records = [flow(t0=i * 0.5, dur=0.2) for i in range(12)]  # one 12-flow session
        hist = flows_per_session_histogram(build_sessions(records, 1.0))
        assert hist[">9"] == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            flows_per_session_histogram([])
        with pytest.raises(ValueError):
            multi_flow_fraction([])

    def test_multi_flow_fraction(self):
        records = [
            flow(t0=0.0, dur=0.1), flow(t0=0.2, dur=1.0),  # 2-flow session
            flow(src=2, t0=100.0),                          # 1-flow session
        ]
        assert multi_flow_fraction(build_sessions(records, 1.0)) == pytest.approx(0.5)

    def test_gap_sensitivity_keys(self):
        records = [flow(t0=0.0), flow(t0=30.0)]
        result = gap_sensitivity(records)
        assert set(result) == {1.0, 5.0, 10.0, 60.0, 300.0}
        assert result[1.0]["1"] == pytest.approx(1.0)
        assert result[60.0]["2"] == pytest.approx(1.0)
