"""Property-based invariant tests (hypothesis).

Randomised checks of the invariants the analysis stack leans on:

- Session building *partitions* the input flows: every flow lands in
  exactly one session, bytes are conserved, and an infinite gap collapses
  each (client, video) pair to a single session.
- :func:`repro.artifacts.keys.canonicalize` is deterministic, JSON-stable
  and insensitive to mapping/set iteration order.
- The python and numpy kernels agree flow-for-flow on generated tables.

The whole module skips cleanly when hypothesis is not installed.
"""

from __future__ import annotations

import json
from collections import Counter

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.artifacts.keys import canonicalize, stage_key  # noqa: E402
from repro.core.sessions import (  # noqa: E402
    PAPER_GAP_SWEEP_S,
    build_sessions,
    gap_sensitivity,
)
from repro.trace.columnar import KERNELS_ENV, kernels_backend  # noqa: E402
from repro.trace.records import FlowRecord  # noqa: E402


def flow_records(min_size=0, max_size=60):
    """A strategy for messy flow lists: few keys, heavy overlap, ties."""

    def build(raw):
        return [
            FlowRecord(
                src_ip=client,
                dst_ip=server,
                num_bytes=num_bytes,
                t_start=t_start * 0.5,
                t_end=t_start * 0.5 + duration,
                video_id=f"vid{video}",
                resolution="360p",
            )
            for client, server, video, num_bytes, t_start, duration in raw
        ]

    record = st.tuples(
        st.integers(min_value=1, max_value=4),     # client
        st.integers(min_value=100, max_value=104),  # server
        st.integers(min_value=0, max_value=3),      # video
        st.integers(min_value=0, max_value=10**7),  # bytes
        st.integers(min_value=0, max_value=40),     # start half-seconds
        st.sampled_from([0.0, 0.25, 1.0, 5.0, 30.0]),
    )
    return st.lists(record, min_size=min_size, max_size=max_size).map(build)


gaps = st.sampled_from(list(PAPER_GAP_SWEEP_S) + [0.25, 2.5])


class TestSessionInvariants:
    @given(records=flow_records(), gap_s=gaps)
    @settings(max_examples=80, deadline=None)
    def test_sessions_partition_the_flows(self, records, gap_s):
        sessions = build_sessions(records, gap_s=gap_s)
        grouped = [f for s in sessions for f in s.flows]
        assert Counter(grouped) == Counter(records)

    @given(records=flow_records(), gap_s=gaps)
    @settings(max_examples=80, deadline=None)
    def test_bytes_are_conserved(self, records, gap_s):
        sessions = build_sessions(records, gap_s=gap_s)
        assert sum(s.total_bytes for s in sessions) == \
            sum(r.num_bytes for r in records)

    @given(records=flow_records(), gap_s=gaps)
    @settings(max_examples=80, deadline=None)
    def test_sessions_are_homogeneous_and_ordered(self, records, gap_s):
        for session in build_sessions(records, gap_s=gap_s):
            assert session.num_flows >= 1
            assert all(f.src_ip == session.client_ip for f in session.flows)
            assert all(f.video_id == session.video_id for f in session.flows)
            starts = [f.t_start for f in session.flows]
            assert starts == sorted(starts)

    @given(records=flow_records(min_size=1))
    @settings(max_examples=80, deadline=None)
    def test_infinite_gap_means_one_session_per_client_video(self, records):
        sessions = build_sessions(records, gap_s=float("inf"))
        keys = [(s.client_ip, s.video_id) for s in sessions]
        assert len(keys) == len(set(keys))
        assert set(keys) == {(r.src_ip, r.video_id) for r in records}

    @given(records=flow_records())
    @settings(max_examples=60, deadline=None)
    def test_widening_the_gap_never_adds_sessions(self, records):
        counts = [
            len(build_sessions(records, gap_s=gap))
            for gap in sorted(PAPER_GAP_SWEEP_S)
        ]
        assert counts == sorted(counts, reverse=True)


# A recursive strategy over everything canonicalize() accepts.
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
canonical_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
        st.frozensets(st.integers(min_value=-50, max_value=50), max_size=6),
        st.binary(max_size=12),
    ),
    max_leaves=20,
)


class TestCanonicalize:
    @given(value=canonical_values)
    @settings(max_examples=120, deadline=None)
    def test_output_is_json_stable(self, value):
        canonical = canonicalize(value)
        text = json.dumps(canonical, sort_keys=True)
        assert json.loads(text) == canonical
        assert canonicalize(value) == canonical  # deterministic

    @given(mapping=st.dictionaries(st.text(max_size=8), json_scalars,
                                   min_size=2, max_size=6))
    @settings(max_examples=80, deadline=None)
    def test_mapping_order_is_irrelevant(self, mapping):
        reversed_map = dict(reversed(list(mapping.items())))
        assert canonicalize(mapping) == canonicalize(reversed_map)
        assert stage_key("s", mapping) == stage_key("s", reversed_map)

    @given(items=st.lists(st.integers(min_value=-100, max_value=100),
                          min_size=1, max_size=8, unique=True))
    @settings(max_examples=80, deadline=None)
    def test_set_iteration_order_is_irrelevant(self, items):
        assert canonicalize(set(items)) == canonicalize(set(reversed(items)))
        assert canonicalize(frozenset(items)) == canonicalize(set(items))

    @given(items=st.lists(json_scalars, min_size=2, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_sequences_stay_order_sensitive(self, items):
        assert canonicalize(items) == canonicalize(tuple(items))
        reversed_items = list(reversed(items))
        if reversed_items != items:
            assert canonicalize(reversed_items) != canonicalize(items)


class TestKernelParity:
    @pytest.fixture(autouse=True)
    def _numpy_available(self):
        pytest.importorskip("numpy")

    def _on(self, monkeypatch, backend, fn):
        monkeypatch.setenv(KERNELS_ENV, backend)
        assert kernels_backend() == backend
        return fn()

    @given(records=flow_records(), gap_s=gaps)
    @settings(max_examples=50, deadline=None)
    def test_session_parity(self, records, gap_s):
        monkeypatch = pytest.MonkeyPatch()
        try:
            py = self._on(monkeypatch, "python",
                          lambda: build_sessions(records, gap_s=gap_s))
            np_ = self._on(monkeypatch, "numpy",
                           lambda: build_sessions(records, gap_s=gap_s))
        finally:
            monkeypatch.undo()
        assert [(s.client_ip, s.video_id, s.flows) for s in py] == \
            [(s.client_ip, s.video_id, s.flows) for s in np_]

    @given(records=flow_records(min_size=1))
    @settings(max_examples=30, deadline=None)
    def test_gap_sweep_parity(self, records):
        monkeypatch = pytest.MonkeyPatch()
        try:
            py = self._on(monkeypatch, "python",
                          lambda: gap_sensitivity(records, PAPER_GAP_SWEEP_S))
            np_ = self._on(monkeypatch, "numpy",
                           lambda: gap_sensitivity(records, PAPER_GAP_SWEEP_S))
        finally:
            monkeypatch.undo()
        assert py == np_


class TestWindowedSessions:
    """Streamed session building equals the batch spec, for any window.

    Feeds the same random flow lists through the tumbling windower and
    the incremental builder — including out-of-order delivery *within*
    the watermark — and demands the exact batch result: same window
    record order, same session multiset.
    """

    window_sizes = st.sampled_from([0.5, 1.0, 3.25, 10.0, 1000.0])
    chunk_sizes = st.integers(min_value=1, max_value=7)

    @staticmethod
    def _stream(records, window_s, gap_s, chunk):
        """Replay ``records`` with within-watermark disorder.

        ``seq`` is each record's original list position (the batch
        stable-sort tie-break); emission goes in ``chunk``-sized batches
        of the time-sorted order, each batch watermarked at its earliest
        start and delivered in reverse.
        """
        from repro.stream.events import FlowArrival, WatermarkAdvance
        from repro.stream.windows import TumblingWindower, WindowedSessionBuilder

        order = sorted(range(len(records)), key=lambda i: records[i].t_start)
        windower = TumblingWindower(window_s)
        builder = WindowedSessionBuilder(gap_s)
        sessions, windowed = [], []
        last_boundary = float("-inf")

        def feed(event):
            nonlocal last_boundary
            for window in windower.push(event):
                windowed.extend(window.records)
                sessions.extend(builder.observe_window(window))
            if windower.sealed_boundary_s > last_boundary:
                last_boundary = windower.sealed_boundary_s
                sessions.extend(builder.advance(last_boundary))

        for pos in range(0, len(order), chunk):
            batch = order[pos:pos + chunk]
            feed(WatermarkAdvance(t_s=records[batch[0]].t_start))
            for index in reversed(batch):
                feed(FlowArrival(record=records[index], seq=index))
        feed(WatermarkAdvance(t_s=float("inf")))
        for window in windower.finish():
            windowed.extend(window.records)
            sessions.extend(builder.observe_window(window))
        sessions.extend(builder.finish())
        assert windower.late_records == 0
        return sessions, windowed

    @staticmethod
    def _canon(sessions):
        return Counter(
            (s.client_ip, s.video_id, tuple(s.flows)) for s in sessions
        )

    @given(records=flow_records(), gap_s=gaps,
           window_s=window_sizes, chunk=chunk_sizes)
    @settings(max_examples=80, deadline=None)
    def test_streamed_sessions_equal_batch(self, records, gap_s,
                                           window_s, chunk):
        streamed, _ = self._stream(records, window_s, gap_s, chunk)
        assert self._canon(streamed) == self._canon(
            build_sessions(records, gap_s=gap_s)
        )

    @given(records=flow_records(), window_s=window_sizes, chunk=chunk_sizes)
    @settings(max_examples=80, deadline=None)
    def test_sealed_windows_reconstruct_batch_order(self, records,
                                                    window_s, chunk):
        _, windowed = self._stream(records, window_s, 1.0, chunk)
        assert windowed == sorted(
            records, key=lambda r: (r.t_start, r.t_end)
        )
