"""A compact paper-shape battery at a second seed.

The main integration suite runs at seed 7; this re-checks the
load-bearing shapes at seed 23 with an independent pipeline, guarding the
reproduction against single-seed luck (complementing the per-mechanism
seed checks in test_robustness.py).
"""

import pytest

from repro.core.pipeline import StudyPipeline
from repro.core.subnets import most_biased_subnet
from repro.sim.driver import run_all

ALT_SEED = 23


@pytest.fixture(scope="module")
def alt_pipeline():
    results = run_all(scale=0.015, seed=ALT_SEED)
    return StudyPipeline(results, landmark_count=50, seed=31)


class TestAltSeedShapes:
    def test_preferred_shares(self, alt_pipeline):
        for name in ("US-Campus", "EU1-Campus", "EU1-ADSL", "EU1-FTTH"):
            report = alt_pipeline.preferred_reports[name]
            assert report.byte_share(report.preferred_id) > 0.8, name

    def test_preferred_is_min_rtt_major(self, alt_pipeline):
        for name in alt_pipeline.dataset_names:
            report = alt_pipeline.preferred_reports[name]
            majors = [
                v for v in report.views
                if v.num_bytes / report.total_bytes > 0.05
            ]
            assert report.preferred.min_rtt_ms == min(v.min_rtt_ms for v in majors)

    def test_nonpreferred_bands(self, alt_pipeline):
        # Wider bands than the seed-7 suite: a different latency world
        # shifts the spill targets, and the coarse 50-landmark CBG can
        # merge a near-ranked alternate into the preferred cluster.
        for name in ("US-Campus", "EU1-Campus", "EU1-ADSL", "EU1-FTTH"):
            fraction = alt_pipeline.nonpreferred_fraction(name)
            assert 0.01 < fraction < 0.25, (name, fraction)
        assert alt_pipeline.nonpreferred_fraction("EU2") > 0.5

    def test_us_campus_geography_anomaly(self, alt_pipeline):
        # The qualitative Figure 8 contrast: geography predicts EU1's
        # traffic but not US-Campus's.
        us = alt_pipeline.preferred_reports["US-Campus"].closest_k_share(5)
        eu = alt_pipeline.preferred_reports["EU1-ADSL"].closest_k_share(5)
        assert us < 0.15
        assert eu > 0.7
        assert us < eu / 4

    def test_net3_bias(self, alt_pipeline):
        shares = alt_pipeline.subnet_shares("US-Campus")
        assert most_biased_subnet(shares).subnet_name == "Net-3"

    def test_eu2_load_balance(self, alt_pipeline):
        lb = alt_pipeline.load_balance("EU2")
        quiet, busy = lb.night_day_split()
        assert quiet > busy + 0.25
        assert lb.correlation() < -0.5

    def test_session_shares(self, alt_pipeline):
        for name in alt_pipeline.dataset_names:
            histogram = alt_pipeline.session_histogram(name)
            assert 0.68 < histogram["1"] < 0.90, name
