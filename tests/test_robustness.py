"""Robustness and failure-injection tests.

A measurement methodology is only useful if it degrades gracefully when
the measurement substrate misbehaves: monitors drop flows, landmarks go
dark, probes get noisy.  These tests inject those failures and check the
analyses bend rather than break.
"""

import random

import pytest

from repro.core.sessions import build_sessions, flows_per_session_histogram
from repro.geo.cities import default_atlas
from repro.geo.coords import haversine_km
from repro.geo.landmarks import generate_landmarks
from repro.geoloc.cbg import CbgGeolocator
from repro.geoloc.probing import RttProber
from repro.net.latency import AccessTechnology, LatencyModel, Site
from repro.sim.engine import run_requests
from repro.sim.scenarios import PAPER_SCENARIOS, build_world


class TestMonitorLoss:
    """Tstat misses flows; the session analysis must survive it."""

    @pytest.fixture(scope="class")
    def lossy_world(self):
        return build_world(PAPER_SCENARIOS["EU1-ADSL"], scale=0.004, seed=21)

    def test_session_stats_stable_under_loss(self, lossy_world):
        clean = run_requests(lossy_world, miss_probability=0.0)
        lossy = run_requests(lossy_world, miss_probability=0.05)
        h_clean = flows_per_session_histogram(
            build_sessions(clean.dataset.records, 1.0)
        )
        h_lossy = flows_per_session_histogram(
            build_sessions(lossy.dataset.records, 1.0)
        )
        # 5% flow loss moves the single-flow share by a few points at most.
        assert abs(h_clean["1"] - h_lossy["1"]) < 0.06

    def test_loss_rate_observed(self, lossy_world):
        lossy = run_requests(lossy_world, miss_probability=0.3)
        clean = run_requests(lossy_world, miss_probability=0.0)
        assert len(lossy.dataset) < 0.8 * len(clean.dataset)


class TestCbgDegradation:
    """CBG under landmark dropout and extra probe noise."""

    @pytest.fixture(scope="class")
    def full_cbg(self):
        landmarks = generate_landmarks(seed=42).subsample(80, seed=1)
        latency = LatencyModel(seed=123)
        return landmarks, latency, CbgGeolocator(
            landmarks, RttProber(latency, probes=5, seed=9)
        )

    def _target(self, city):
        point = default_atlas().get(city).point
        return Site(key=f"t:{city}", point=point,
                    access=AccessTechnology.DATACENTER, group=f"t:{city}")

    def test_partial_measurements_still_locate(self, full_cbg):
        landmarks, latency, cbg = full_cbg
        target = self._target("Amsterdam")
        rtts = cbg.measure_target(target)
        # Two thirds of the landmarks go dark.
        rng = random.Random(0)
        kept = dict(rng.sample(sorted(rtts.items()), len(rtts) // 3))
        result = cbg.geolocate(kept)
        err = haversine_km(result.estimate, target.point)
        assert err < 600.0  # degraded, not broken

    def test_dropout_grows_error_but_not_unbounded(self, full_cbg):
        landmarks, latency, cbg = full_cbg
        target = self._target("Chicago")
        rtts = cbg.measure_target(target)
        full_err = haversine_km(cbg.geolocate(rtts).estimate, target.point)
        rng = random.Random(1)
        kept = dict(rng.sample(sorted(rtts.items()), 6))
        few_err = haversine_km(cbg.geolocate(kept).estimate, target.point)
        assert few_err < 2500.0
        assert full_err < 400.0

    def test_inflated_rtts_keep_region_valid(self, full_cbg):
        """Extra queueing only widens constraints: the target stays inside."""
        landmarks, latency, cbg = full_cbg
        target = self._target("Milan")
        rtts = {name: rtt + 8.0 for name, rtt in cbg.measure_target(target).items()}
        result = cbg.geolocate(rtts)
        err = haversine_km(result.estimate, target.point)
        assert err < result.confidence_radius_km + 800.0


class TestSeedRobustness:
    """Headline shapes are properties of the mechanisms, not of one seed."""

    @pytest.mark.parametrize("seed", [11, 23, 37])
    def test_preferred_share_across_seeds(self, seed):
        world = build_world(PAPER_SCENARIOS["EU1-FTTH"], scale=0.004, seed=seed)
        result = run_requests(world)
        preferred = world.system.policy.ranking_for("EU1-FTTH/Net-1")[0]
        share = result.served_dc_counts[preferred] / result.requests
        assert share > 0.8, (seed, share)

    @pytest.mark.parametrize("seed", [11, 23])
    def test_eu2_split_across_seeds(self, seed):
        world = build_world(PAPER_SCENARIOS["EU2"], scale=0.006, seed=seed)
        result = run_requests(world)
        internal = world.internal_dc_id
        share = result.served_dc_counts.get(internal, 0) / result.requests
        assert 0.25 < share < 0.65, (seed, share)


class TestEmptyAndEdgeInputs:
    def test_sessions_on_empty_records(self):
        assert build_sessions([], gap_s=1.0) == []

    def test_pipeline_rejects_empty(self):
        from repro.core.pipeline import StudyPipeline

        with pytest.raises(ValueError):
            StudyPipeline({})

    def test_one_hour_trace(self):
        world = build_world(
            PAPER_SCENARIOS["EU1-FTTH"], scale=0.05, seed=5, duration_s=3600.0
        )
        result = run_requests(world)
        assert result.dataset.num_hours == 1
        assert all(r.hour == 0 for r in result.dataset.records)

    def test_two_week_trace(self):
        """Longer windows: weekly periodicity repeats, features keep coming."""
        world = build_world(
            PAPER_SCENARIOS["EU1-FTTH"], scale=0.01, seed=5,
            duration_s=14 * 86400.0,
        )
        result = run_requests(world)
        dataset = result.dataset
        assert dataset.num_hours == 14 * 24
        # Both weeks carry traffic.
        week1 = sum(1 for r in dataset.records if r.hour < 168)
        week2 = sum(1 for r in dataset.records if r.hour >= 168)
        assert week1 > 0 and week2 > 0
        assert 0.5 < week1 / week2 < 2.0
        # The catalog features a video on every one of the 14 days.
        catalog = world.system.catalog
        assert all(catalog.featured_on_day(d) is not None for d in range(14))
