"""Tests for the video catalog."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdn.catalog import (
    DEFAULT_NUM_SHARDS,
    Resolution,
    Video,
    VideoCatalog,
    encode_video_id,
    hostname_for_video,
    shard_of,
)


@pytest.fixture(scope="module")
def catalog():
    return VideoCatalog(size=5000, seed=3, featured_share=0.1)


class TestVideoIds:
    @given(st.integers(min_value=0, max_value=10_000_000))
    @settings(max_examples=200)
    def test_id_shape(self, index):
        vid = encode_video_id(index)
        assert len(vid) == 11

    def test_ids_unique_over_large_range(self):
        ids = {encode_video_id(i) for i in range(50_000)}
        assert len(ids) == 50_000

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_video_id(-1)

    def test_shard_stable_and_in_range(self):
        vid = encode_video_id(12345)
        s1 = shard_of(vid)
        s2 = shard_of(vid)
        assert s1 == s2
        assert 0 <= s1 < DEFAULT_NUM_SHARDS

    def test_hostname_embeds_shard(self):
        vid = encode_video_id(77)
        host = hostname_for_video(vid)
        assert host.startswith(f"v{shard_of(vid)}.")


class TestResolutions:
    def test_bitrates_monotone(self):
        rates = [r.bitrate_kbps for r in
                 (Resolution.R240, Resolution.R360, Resolution.R480, Resolution.R720)]
        assert rates == sorted(rates)

    def test_labels(self):
        assert Resolution.R360.label == "360p"

    def test_size_scales_with_resolution(self, catalog):
        video = catalog.by_rank(0)
        assert video.size_bytes(Resolution.R720) > video.size_bytes(Resolution.R240)

    def test_size_formula(self):
        video = Video(video_id="x" * 11, rank=0, duration_s=100.0, weight=1.0)
        assert video.size_bytes(Resolution.R240) == int(100 * 300 * 1000 / 8)


class TestCatalog:
    def test_size_and_lookup(self, catalog):
        assert len(catalog) == 5000
        video = catalog.by_rank(17)
        assert catalog.get(video.video_id) is video

    def test_unknown_id_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.get("nonexistent!")

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            VideoCatalog(size=5)

    def test_durations_clipped(self, catalog):
        for video in catalog:
            assert 20.0 <= video.duration_s <= 2700.0

    def test_weights_decrease_with_rank(self, catalog):
        weights = [catalog.by_rank(r).weight for r in (0, 10, 100, 1000)]
        assert weights == sorted(weights, reverse=True)

    def test_sampling_respects_popularity(self, catalog):
        rng = random.Random(0)
        head_hits = sum(
            1 for _ in range(4000) if catalog.sample(rng.random()).rank < 500
        )
        tail_hits = sum(
            1 for _ in range(4000) if catalog.sample(rng.random()).rank >= 4500
        )
        assert head_hits > tail_hits * 3

    def test_head_not_dominated_by_single_video(self, catalog):
        """Zipf-Mandelbrot: no single video hogs the catalogue."""
        rng = random.Random(1)
        top = sum(1 for _ in range(5000) if catalog.sample(rng.random()).rank == 0)
        assert top / 5000 < 0.02

    def test_sample_u_validated(self, catalog):
        with pytest.raises(ValueError):
            catalog.sample(1.0)
        with pytest.raises(ValueError):
            catalog.sample(-0.1)

    def test_deterministic_across_instances(self):
        a = VideoCatalog(size=100, seed=9)
        b = VideoCatalog(size=100, seed=9)
        assert [v.video_id for v in a] == [v.video_id for v in b]
        assert [v.duration_s for v in a] == [v.duration_s for v in b]


class TestFeatured:
    def test_one_feature_per_day(self, catalog):
        for day in range(7):
            assert catalog.featured_on_day(day) is not None
        assert catalog.featured_on_day(100) is None

    def test_features_from_tail(self, catalog):
        for video in catalog.featured_videos:
            assert video.rank >= len(catalog) // 3

    def test_feature_absorbs_share(self, catalog):
        featured = catalog.featured_on_day(0)
        rng = random.Random(2)
        in_window = sum(
            1 for _ in range(4000)
            if catalog.sample(rng.random(), t_s=100.0) is featured
        )
        assert 0.06 < in_window / 4000 < 0.15  # featured_share = 0.1

    def test_feature_silent_outside_window(self, catalog):
        featured = catalog.featured_on_day(0)
        rng = random.Random(3)
        out_window = sum(
            1 for _ in range(4000)
            if catalog.sample(rng.random(), t_s=3 * 86400.0) is featured
        )
        assert out_window / 4000 < 0.01

    def test_no_time_means_no_feature_boost(self, catalog):
        featured = catalog.featured_on_day(0)
        rng = random.Random(4)
        hits = sum(
            1 for _ in range(4000) if catalog.sample(rng.random()) is featured
        )
        assert hits / 4000 < 0.01


class TestCutoff:
    def test_cutoff_monotone(self, catalog):
        assert (
            catalog.popularity_cutoff_rank(0.3)
            <= catalog.popularity_cutoff_rank(0.6)
            <= catalog.popularity_cutoff_rank(0.9)
        )

    def test_cutoff_bounds(self, catalog):
        assert catalog.popularity_cutoff_rank(1.0) <= len(catalog) + 1
        assert catalog.popularity_cutoff_rank(0.01) >= 1
        with pytest.raises(ValueError):
            catalog.popularity_cutoff_rank(0.0)
