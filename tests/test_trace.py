"""Tests for the trace package: records, monitor, log I/O."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdn.cluster import FlowEvent
from repro.net.ip import parse_ip
from repro.sim.scenarios import PAPER_SCENARIOS, build_world
from repro.trace.logio import dumps, format_record, loads, parse_record, read_flow_log, write_flow_log
from repro.trace.monitor import EdgeMonitor
from repro.trace.records import Dataset, FlowRecord


def record(src="128.210.0.5", dst="173.194.0.10", nbytes=5000, t0=10.0, t1=20.0,
           vid="AAAAAAAAAAA", res="360p"):
    return FlowRecord(
        src_ip=parse_ip(src), dst_ip=parse_ip(dst), num_bytes=nbytes,
        t_start=t0, t_end=t1, video_id=vid, resolution=res,
    )


class TestFlowRecord:
    def test_properties(self):
        r = record()
        assert r.duration_s == 10.0
        assert r.hour == 0
        assert r.src_str == "128.210.0.5"
        assert r.dst_str == "173.194.0.10"

    def test_hour_binning(self):
        assert record(t0=3599.9, t1=3600.5).hour == 0
        assert record(t0=3600.0, t1=3700.0).hour == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            record(t0=10.0, t1=5.0)
        with pytest.raises(ValueError):
            record(nbytes=-1)


class TestDataset:
    @pytest.fixture
    def vantage(self):
        return build_world(PAPER_SCENARIOS["EU1-Campus"], scale=0.01, seed=2).vantage

    def test_aggregates(self, vantage):
        records = [record(nbytes=100), record(dst="173.194.0.11", nbytes=200)]
        ds = Dataset(name="X", vantage=vantage, records=records)
        assert len(ds) == 2
        assert ds.total_bytes == 300
        assert len(ds.server_ips) == 2
        assert len(ds.client_ips) == 1

    def test_filtered(self, vantage):
        keep = parse_ip("173.194.0.10")
        records = [record(), record(dst="173.194.0.11")]
        ds = Dataset(name="X", vantage=vantage, records=records)
        filtered = ds.filtered([keep])
        assert len(filtered) == 1
        assert filtered.records[0].dst_ip == keep
        assert filtered.name == "X"

    def test_subnet_plan(self, vantage):
        ds = Dataset(name="X", vantage=vantage, records=[record()])
        plan = ds.subnet_plan()
        assert len(plan) == len(vantage.subnets)

    def test_duration_validated(self, vantage):
        with pytest.raises(ValueError):
            Dataset(name="X", vantage=vantage, records=[], duration_s=0.0)


class TestSummaryDigest:
    @pytest.fixture
    def vantage(self):
        return build_world(PAPER_SCENARIOS["EU1-Campus"], scale=0.01, seed=2).vantage

    def dataset(self, vantage, records=None, **kwargs):
        if records is None:
            records = [record(), record(vid="BBBBBBBBBBB", t0=100.0, t1=110.0)]
        return Dataset(name="X", vantage=vantage, records=records, **kwargs)

    def test_deterministic(self, vantage):
        ds = self.dataset(vantage)
        assert ds.summary_digest() == ds.summary_digest()
        assert len(ds.summary_digest()) == 64

    def test_differs_from_content_digest(self, vantage):
        ds = self.dataset(vantage)
        assert ds.summary_digest() != ds.content_digest()

    def test_equal_content_implies_equal_summary(self, vantage):
        a = self.dataset(vantage)
        b = self.dataset(vantage)
        assert a.content_digest() == b.content_digest()
        assert a.summary_digest() == b.summary_digest()

    def test_session_splitting_change_changes_digest(self, vantage):
        # Two flows of one video 20 s apart: one session at gap 30,
        # two sessions at gap 5.
        records = [record(t0=0.0, t1=10.0), record(t0=30.0, t1=40.0)]
        ds = self.dataset(vantage, records=records)
        assert ds.summary_digest(gap_s=30.0) != ds.summary_digest(gap_s=5.0)

    def test_flow_change_changes_digest(self, vantage):
        base = self.dataset(vantage)
        moved = self.dataset(
            vantage,
            records=[record(), record(vid="BBBBBBBBBBB", t0=101.0, t1=111.0)],
        )
        assert base.summary_digest() != moved.summary_digest()

    def test_header_fields_participate(self, vantage):
        week = self.dataset(vantage)
        day = self.dataset(vantage, duration_s=86400.0)
        assert week.summary_digest() != day.summary_digest()


class TestMonitor:
    @pytest.fixture
    def vantage(self):
        return build_world(PAPER_SCENARIOS["EU1-Campus"], scale=0.01, seed=2).vantage

    def make_event(self, i=0):
        return FlowEvent(
            t_start=float(i), t_end=float(i) + 1.0,
            client_ip=parse_ip("128.210.0.5"), server_ip=parse_ip("173.194.0.10"),
            num_bytes=1000, video_id="AAAAAAAAAAA", resolution="360p", kind="video",
        )

    def test_records_all_without_misses(self, vantage):
        monitor = EdgeMonitor(vantage, miss_probability=0.0)
        monitor.observe_all(self.make_event(i) for i in range(10))
        assert monitor.record_count == 10
        assert monitor.missed == 0

    def test_miss_probability(self, vantage):
        monitor = EdgeMonitor(vantage, miss_probability=0.5, seed=1)
        monitor.observe_all(self.make_event(i) for i in range(1000))
        assert 350 < monitor.record_count < 650
        assert monitor.missed + monitor.record_count == 1000

    def test_finish_sorts(self, vantage):
        monitor = EdgeMonitor(vantage, miss_probability=0.0)
        for i in (5, 1, 3):
            monitor.observe(self.make_event(i))
        ds = monitor.finish("X", 3600.0)
        starts = [r.t_start for r in ds.records]
        assert starts == sorted(starts)

    def test_validation(self, vantage):
        with pytest.raises(ValueError):
            EdgeMonitor(vantage, miss_probability=1.0)

    def _observed_ids(self, vantage, seed):
        monitor = EdgeMonitor(vantage, miss_probability=0.3, seed=seed)
        for i in range(200):
            event = self.make_event(i)
            event = FlowEvent(
                t_start=event.t_start, t_end=event.t_end,
                client_ip=event.client_ip, server_ip=event.server_ip,
                num_bytes=event.num_bytes, video_id=f"vid{i:08d}",
                resolution=event.resolution, kind=event.kind,
            )
            monitor.observe(event)
        return {r.video_id for r in monitor.finish("X", 3600.0).records}

    def test_same_seed_drops_the_same_flows(self, vantage):
        first = self._observed_ids(vantage, seed=17)
        second = self._observed_ids(vantage, seed=17)
        assert first == second
        assert 0 < len(first) < 200

    def test_different_seeds_drop_different_flows(self, vantage):
        assert self._observed_ids(vantage, seed=17) != \
            self._observed_ids(vantage, seed=18)

    def test_miss_counters_are_seed_deterministic(self, vantage):
        counts = []
        for _ in range(2):
            monitor = EdgeMonitor(vantage, miss_probability=0.3, seed=5)
            monitor.observe_all(self.make_event(i) for i in range(300))
            counts.append((monitor.observed, monitor.missed,
                           monitor.record_count))
        assert counts[0] == counts[1]
        assert counts[0][0] == 300
        assert counts[0][1] + counts[0][2] == 300


class TestLogIo:
    def test_roundtrip_string(self):
        records = [record(), record(dst="74.125.1.2", nbytes=999, vid="B_-123456Zz")]
        assert loads(dumps(records)) == records

    def test_roundtrip_file(self, tmp_path):
        records = [record(t0=1.5, t1=2.25)]
        path = tmp_path / "flows.tsv"
        count = write_flow_log(records, path)
        assert count == 1
        assert read_flow_log(path) == records

    def test_header_skipped(self):
        text = "# a comment\n\n" + format_record(record()) + "\n"
        assert len(loads(text)) == 1

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_record("only\tthree\tfields")

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=10 ** 9),
        st.floats(min_value=0.0, max_value=604800.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=3600.0, allow_nan=False),
        st.text(alphabet="ABCdef012_-", min_size=11, max_size=11),
    )
    @settings(max_examples=100)
    def test_roundtrip_property(self, src, dst, nbytes, t0, dur, vid):
        r = FlowRecord(
            src_ip=src, dst_ip=dst, num_bytes=nbytes,
            t_start=t0, t_end=t0 + dur, video_id=vid, resolution="480p",
        )
        parsed = parse_record(format_record(r))
        assert parsed.src_ip == r.src_ip
        assert parsed.dst_ip == r.dst_ip
        assert parsed.num_bytes == r.num_bytes
        assert parsed.video_id == r.video_id
        assert parsed.t_start == pytest.approx(r.t_start, abs=1e-6)
        assert parsed.t_end == pytest.approx(r.t_end, abs=1e-6)
