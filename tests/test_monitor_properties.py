"""Property-based invariants of the monitoring subsystem (hypothesis).

Randomised checks of the contracts :mod:`repro.monitor` advertises:

- **No change, no alarm**: a zero-evolution (static) world never alarms,
  at any horizon or epoch length.
- **Backend invariance**: the detection verdict — alarms, ground truth,
  and the score — is byte-identical across serial/thread/process
  executors and across epoch lengths.
- **Planted change**: a single scheduled change is detected at exactly
  its epoch, wherever it lands in the horizon.
- **Metric axioms**: the pattern dissimilarity is symmetric, bounded in
  ``[0, 1]``, and zero on identical snapshots, for arbitrary cell
  layouts.

The whole module skips cleanly when hypothesis is not installed.
"""

from __future__ import annotations

import json

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.exec.executor import ParallelExecutor  # noqa: E402
from repro.monitor import (  # noqa: E402
    EpochSnapshot,
    EvolutionPlan,
    EvolutionStep,
    STATIC_PLAN,
    cluster_snapshot,
    pattern_dissimilarity,
    run_monitor,
)
from repro.spec.model import par_delta  # noqa: E402

SCALE = 0.01
SEED = 7

# Simulation-backed properties: each example is a real multi-epoch run,
# so examples are few and the deadline is off.
_SIM = settings(
    max_examples=4, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _verdict(report) -> str:
    return json.dumps(report.verdict_dict(), sort_keys=True)


# ------------------------------------------------ no change, no alarm


@_SIM
@given(
    epochs=st.integers(min_value=2, max_value=4),
    epoch_s=st.sampled_from([21600.0, 43200.0, 86400.0]),
)
def test_static_world_never_alarms(epochs, epoch_s):
    report = run_monitor("EU1-ADSL", plan=STATIC_PLAN, epochs=epochs,
                         epoch_s=epoch_s, scale=SCALE, seed=SEED)
    assert report.alarm_epochs() == []
    assert report.score.precision == 1.0
    assert report.score.recall == 1.0


# --------------------------------------------------- backend invariance

_BASELINE: dict = {}


def _serial_verdict(epochs: int) -> str:
    if epochs not in _BASELINE:
        _BASELINE[epochs] = _verdict(run_monitor(
            "EU1-ADSL", plan=_plan_at(2), epochs=epochs, scale=SCALE,
            seed=SEED, executor=ParallelExecutor("serial"),
        ))
    return _BASELINE[epochs]


def _plan_at(epoch: int) -> EvolutionPlan:
    return EvolutionPlan(steps=(
        EvolutionStep(
            epoch=epoch,
            spec=par_delta(preferred_override="dc-frankfurt"),
            label="flip",
        ),
    ))


@_SIM
@given(backend=st.sampled_from(["thread", "process"]))
def test_verdict_identical_across_backends(backend):
    report = run_monitor(
        "EU1-ADSL", plan=_plan_at(2), epochs=3, scale=SCALE, seed=SEED,
        executor=ParallelExecutor(backend, max_workers=3),
    )
    assert _verdict(report) == _serial_verdict(3)


@_SIM
@given(epoch_s=st.sampled_from([43200.0, 86400.0, 172800.0]))
def test_verdict_identical_across_epoch_lengths(epoch_s):
    report = run_monitor("EU1-ADSL", plan=_plan_at(2), epochs=3,
                         epoch_s=epoch_s, scale=SCALE, seed=SEED)
    doc = json.loads(_verdict(report))
    assert doc["alarms"] == [2]
    assert doc["score"]["f1"] == 1.0


# ------------------------------------------------------- planted change


@_SIM
@given(change_epoch=st.integers(min_value=1, max_value=3))
def test_planted_change_detected_at_its_epoch(change_epoch):
    report = run_monitor("EU1-ADSL", plan=_plan_at(change_epoch), epochs=4,
                         scale=SCALE, seed=SEED)
    assert report.alarm_epochs() == [change_epoch]
    assert report.truth == (change_epoch,)
    assert report.score.f1 == 1.0


# -------------------------------------------------------- metric axioms

_CELLS = st.lists(
    st.tuples(
        st.sampled_from(["Net-1", "Net-2"]),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=10_000),
    ),
    min_size=0, max_size=6,
    unique_by=lambda c: (c[0], c[1]),
)
_RTTS = st.dictionaries(
    st.integers(min_value=1, max_value=6),
    st.floats(min_value=1.0, max_value=300.0,
              allow_nan=False, allow_infinity=False),
    max_size=6,
)


def _snapshot(cells, rtts) -> EpochSnapshot:
    rows = tuple((s, p, b, 1) for s, p, b in sorted(cells))
    prefixes = {p for _, p, _, _ in rows}
    return EpochSnapshot(
        name="t", epoch=0, duration_s=1.0, prefix_len=24, cells=rows,
        rtt_ms=tuple(sorted(
            (p, round(r, 3)) for p, r in rtts.items() if p in prefixes
        )),
        bytes_total=sum(r[2] for r in rows),
        flows_total=len(rows),
        probes_lost=0,
    )


@settings(max_examples=200, deadline=None)
@given(cells_a=_CELLS, rtts_a=_RTTS, cells_b=_CELLS, rtts_b=_RTTS)
def test_dissimilarity_axioms(cells_a, rtts_a, cells_b, rtts_b):
    a = cluster_snapshot(_snapshot(cells_a, rtts_a))
    b = cluster_snapshot(_snapshot(cells_b, rtts_b))
    d_ab = pattern_dissimilarity(a, b)
    assert 0.0 <= d_ab <= 1.0
    assert d_ab == pytest.approx(pattern_dissimilarity(b, a))
    assert pattern_dissimilarity(a, a) == 0.0
    assert pattern_dissimilarity(b, b) == 0.0


@settings(max_examples=100, deadline=None)
@given(cells=_CELLS, rtts_a=_RTTS, rtts_b=_RTTS,
       dropped=st.sets(st.integers(min_value=1, max_value=6)))
def test_probe_loss_never_increases_distance(cells, rtts_a, rtts_b, dropped):
    full = pattern_dissimilarity(
        cluster_snapshot(_snapshot(cells, rtts_a)),
        cluster_snapshot(_snapshot(cells, rtts_b)),
    )
    degraded = pattern_dissimilarity(
        cluster_snapshot(_snapshot(
            cells, {p: r for p, r in rtts_a.items() if p not in dropped})),
        cluster_snapshot(_snapshot(cells, rtts_b)),
    )
    assert degraded <= full + 1e-9
