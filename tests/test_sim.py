"""Tests for scenario building and the simulation driver."""

import pytest

from repro.net.asn import GOOGLE_ASN, YOUTUBE_EU_ASN
from repro.sim.driver import run_scenario, run_spec
from repro.sim.scenarios import DATASET_NAMES, PAPER_SCENARIOS, build_world
from repro.sim.seeding import derive_seed


class TestSeeding:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_labels_matter(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_requires_labels(self):
        with pytest.raises(ValueError):
            derive_seed(1)

    def test_range(self):
        s = derive_seed(123, "x")
        assert 0 <= s < (1 << 63)


class TestSpecs:
    def test_five_datasets(self):
        assert set(DATASET_NAMES) == {
            "US-Campus", "EU1-Campus", "EU1-ADSL", "EU1-FTTH", "EU2"
        }

    def test_subnet_shares_sum_to_one(self):
        for spec in PAPER_SCENARIOS.values():
            assert sum(s.client_share for s in spec.subnets) == pytest.approx(1.0)

    def test_only_us_campus_has_divergent_resolver(self):
        for name, spec in PAPER_SCENARIOS.items():
            divergent = [s for s in spec.subnets if s.divergent_resolver]
            if name == "US-Campus":
                assert [s.name for s in divergent] == ["Net-3"]
            else:
                assert not divergent

    def test_only_eu2_has_internal_dc(self):
        for name, spec in PAPER_SCENARIOS.items():
            assert spec.internal_dc == (name == "EU2")


class TestBuildWorld:
    @pytest.fixture(scope="class")
    def world(self):
        return build_world(PAPER_SCENARIOS["EU1-ADSL"], scale=0.005, seed=7)

    def test_thirty_three_google_dcs(self, world):
        assert len(world.google_dc_ids) == 33

    def test_google_prefixes_announced(self, world):
        for dc_id in world.google_dc_ids:
            dc = world.system.directory.get(dc_id)
            assert world.registry.asn_of(dc.servers[0].ip) == GOOGLE_ASN

    def test_legacy_prefixes_announced(self, world):
        legacy = world.system.directory.get("legacy-amsterdam")
        assert world.registry.asn_of(legacy.servers[0].ip) == YOUTUBE_EU_ASN

    def test_preferred_dc_is_min_rtt(self, world):
        probe = world.probe_site
        rtts = {}
        for dc_id in world.google_dc_ids:
            dc = world.system.directory.get(dc_id)
            rtts[dc_id] = world.latency.min_rtt_ms(probe, dc.server_site(dc.servers[0]))
        ranking = world.system.policy.ranking_for("EU1-ADSL/Net-1")
        assert ranking[0] == min(rtts, key=rtts.get)
        assert ranking[0] == "dc-milan"

    def test_capacities_set_on_ranked_dcs(self, world):
        for dc_id in world.google_dc_ids:
            assert world.system.directory.get(dc_id).server_capacity_per_hour is not None

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            build_world(PAPER_SCENARIOS["EU2"], scale=0.0)
        with pytest.raises(ValueError):
            build_world(PAPER_SCENARIOS["EU2"], policy_kind="magic")

    def test_eu2_internal_dc_ranks_first(self):
        world = build_world(PAPER_SCENARIOS["EU2"], scale=0.004, seed=7)
        assert world.internal_dc_id == "dc-eu2-internal"
        ranking = world.system.policy.ranking_for("EU2/Net-1")
        assert ranking[0] == "dc-eu2-internal"
        # The internal data center sits in the host ISP's AS.
        dc = world.system.directory.get("dc-eu2-internal")
        assert world.registry.asn_of(dc.servers[0].ip) == PAPER_SCENARIOS["EU2"].vantage_asn

    def test_us_campus_preferred_is_far(self):
        world = build_world(PAPER_SCENARIOS["US-Campus"], scale=0.004, seed=7)
        ranking = world.system.policy.ranking_for("US-Campus/Net-1")
        # The five geographically closest data centers are detoured away.
        assert ranking[0] not in {
            "dc-chicago", "dc-kansas-city", "dc-atlanta", "dc-ashburn", "dc-new-york"
        }
        # Net-3's divergent resolver has a different preferred data center.
        net3 = world.system.policy.ranking_for("US-Campus/Net-3")
        assert net3[0] != ranking[0]

    def test_february_2011_preferred_override(self):
        """The paper's Feb-2011 follow-up: the preferred data center is an
        assignment, and the assignment moved away from the RTT optimum."""
        from repro.sim.driver import run_spec
        from repro.sim.scenarios import february_2011_us_campus

        spec = february_2011_us_campus()
        result = run_spec(spec, scale=0.004, seed=7)
        world = result.world
        ranking = world.system.policy.ranking_for("US-Campus-Feb2011/Net-1")
        assert ranking[0] == "dc-mountain-view"
        # The assigned preferred is over 100 ms away...
        mv = world.system.directory.get("dc-mountain-view")
        rtt_mv = world.latency.min_rtt_ms(world.probe_site, mv.server_site(mv.servers[0]))
        assert rtt_mv > 100.0
        # ...while a much closer data center exists (the 2010 preferred).
        dallas = world.system.directory.get("dc-dallas")
        rtt_dallas = world.latency.min_rtt_ms(
            world.probe_site, dallas.server_site(dallas.servers[0])
        )
        assert rtt_dallas < 40.0
        # And the traffic follows the assignment, not the RTT.
        share = result.served_dc_counts["dc-mountain-view"] / result.requests
        assert share > 0.8

    def test_preferred_override_validated(self):
        import dataclasses

        spec = dataclasses.replace(
            PAPER_SCENARIOS["EU1-FTTH"], preferred_override="dc-atlantis"
        )
        with pytest.raises(ValueError):
            build_world(spec, scale=0.004, seed=7)

    def test_proportional_policy_kind(self):
        world = build_world(
            PAPER_SCENARIOS["EU1-FTTH"], scale=0.004, seed=7,
            policy_kind="proportional",
        )
        ranking = world.system.policy.ranking_for("whoever")
        sizes = [world.system.directory.get(d).size for d in ranking]
        assert sizes == sorted(sizes, reverse=True)


class TestDriver:
    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            run_scenario("Nope", scale=0.002)

    def test_cache_reuses_result(self):
        a = run_scenario("EU1-FTTH", scale=0.002, seed=9)
        b = run_scenario("EU1-FTTH", scale=0.002, seed=9)
        assert a is b

    def test_no_cache_still_deterministic(self):
        a = run_scenario("EU1-FTTH", scale=0.002, seed=9, use_cache=False)
        b = run_scenario("EU1-FTTH", scale=0.002, seed=9, use_cache=False)
        assert a is not b
        assert [
            (r.src_ip, r.dst_ip, r.num_bytes, r.t_start) for r in a.dataset.records
        ] == [(r.src_ip, r.dst_ip, r.num_bytes, r.t_start) for r in b.dataset.records]

    def test_different_seeds_differ(self):
        a = run_scenario("EU1-FTTH", scale=0.002, seed=9)
        b = run_scenario("EU1-FTTH", scale=0.002, seed=10)
        assert len(a.dataset) != len(b.dataset) or a.dataset.records != b.dataset.records

    def test_result_counters_consistent(self):
        result = run_scenario("EU1-FTTH", scale=0.002, seed=9)
        assert sum(result.served_dc_counts.values()) == result.requests
        assert sum(result.dns_dc_counts.values()) == result.requests

    def test_flows_exceed_requests(self):
        result = run_scenario("EU1-FTTH", scale=0.002, seed=9)
        assert len(result.dataset) > result.requests
