"""Python-vs-numpy kernel parity (the ``REPRO_KERNELS`` contract).

The columnar kernels in :mod:`repro.trace.columnar` must be *exact*
replacements for the record-at-a-time Python spec: same session lists,
same histograms, same CDF samples, same digests — not merely close.
These tests drive both backends over randomized flow tables and the
shared simulated study and assert byte-for-byte equality.
"""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.core import flows, hotspots, loadbalance, nonpreferred, preferred
from repro.core.sessions import (
    PAPER_GAP_SWEEP_S,
    build_sessions,
    flows_per_session_histogram,
    gap_sensitivity,
)
from repro.core.summary import summarize
from repro.trace.columnar import FlowTable, kernels_backend, use_numpy
from repro.trace.records import FlowRecord

numpy = pytest.importorskip("numpy")

BACKENDS = ("python", "numpy")


def random_flows(rng: random.Random, n: int) -> List[FlowRecord]:
    """A messy flow table: few clients/videos, heavy overlap, many ties."""
    clients = [rng.randrange(1, 6) for _ in range(3)]
    videos = [f"vid{i:07d}" for i in range(4)]
    servers = [rng.randrange(100, 120) for _ in range(5)]
    out: List[FlowRecord] = []
    for _ in range(n):
        # Coarse start grid forces t_start ties within (client, video) groups.
        t_start = float(rng.randrange(0, 40)) * 0.5
        t_end = t_start + rng.choice([0.0, 0.25, 1.0, 5.0, 30.0])
        out.append(
            FlowRecord(
                src_ip=rng.choice(clients),
                dst_ip=rng.choice(servers),
                num_bytes=rng.randrange(0, 5_000_000),
                t_start=t_start,
                t_end=t_end,
                video_id=rng.choice(videos),
                resolution=rng.choice(["240p", "360p", "480p"]),
            )
        )
    return out


def run_on(monkeypatch, backend: str, fn):
    """Run ``fn()`` with the kernel backend forced to ``backend``."""
    monkeypatch.setenv("REPRO_KERNELS", backend)
    assert kernels_backend() == backend
    return fn()


def session_shape(sessions) -> list:
    """A comparable projection of a session list (records compare by value)."""
    return [(s.client_ip, s.video_id, s.flows) for s in sessions]


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
def test_build_sessions_parity(monkeypatch, seed):
    records = random_flows(random.Random(seed), n=120)
    got = {
        backend: run_on(monkeypatch, backend, lambda: build_sessions(records))
        for backend in BACKENDS
    }
    assert session_shape(got["python"]) == session_shape(got["numpy"])


@pytest.mark.parametrize("seed", [10, 11, 12, 13])
def test_gap_sensitivity_parity(monkeypatch, seed):
    records = random_flows(random.Random(seed), n=150)
    got = {
        backend: run_on(
            monkeypatch, backend, lambda: gap_sensitivity(records, PAPER_GAP_SWEEP_S)
        )
        for backend in BACKENDS
    }
    assert got["python"] == got["numpy"]


@pytest.mark.parametrize("seed", [20, 21, 22])
def test_histogram_and_cdf_parity(monkeypatch, seed):
    records = random_flows(random.Random(seed), n=90)
    hists = {}
    cdfs = {}
    for backend in BACKENDS:
        hists[backend] = run_on(
            monkeypatch,
            backend,
            lambda: flows_per_session_histogram(build_sessions(records)),
        )
        cdfs[backend] = run_on(monkeypatch, backend, lambda: flows.flow_size_cdf(records))
    assert hists["python"] == hists["numpy"]
    assert cdfs["python"]._values == cdfs["numpy"]._values
    for p in (0.01, 0.25, 0.5, 0.9, 0.99):
        assert cdfs["python"].quantile(p) == cdfs["numpy"].quantile(p)


def test_classify_flows_parity(monkeypatch):
    records = random_flows(random.Random(33), n=80)
    got = {
        backend: run_on(monkeypatch, backend, lambda: flows.classify_flows(records))
        for backend in BACKENDS
    }
    assert got["python"].video == got["numpy"].video
    assert got["python"].control == got["numpy"].control


def test_empty_dataset(monkeypatch):
    for backend in BACKENDS:
        assert run_on(monkeypatch, backend, lambda: build_sessions([])) == []
        with pytest.raises(ValueError):
            run_on(monkeypatch, backend, lambda: gap_sensitivity([]))


def test_single_flow(monkeypatch):
    records = [FlowRecord(1, 100, 500, 0.0, 1.0, "v" * 11, "360p")]
    for backend in BACKENDS:
        sessions = run_on(monkeypatch, backend, lambda: build_sessions(records))
        assert len(sessions) == 1
        assert sessions[0].flows == records


def test_fully_overlapping_flows(monkeypatch):
    # All flows cover [0, 100): one session regardless of backend or gap.
    records = [
        FlowRecord(1, 100 + i, 1000 + i, 0.0, 100.0, "v" * 11, "360p") for i in range(6)
    ]
    got = {
        backend: run_on(monkeypatch, backend, lambda: build_sessions(records, gap_s=1.0))
        for backend in BACKENDS
    }
    assert len(got["python"]) == len(got["numpy"]) == 1
    assert session_shape(got["python"]) == session_shape(got["numpy"])


def test_t_start_ties(monkeypatch):
    # Identical t_start, differing t_end: the (t_start, t_end) sort and the
    # running-max horizon must agree across backends.
    records = [
        FlowRecord(1, 100, 10, 5.0, 5.0 + e, "v" * 11, "360p")
        for e in (3.0, 0.0, 1.0, 2.0)
    ] + [FlowRecord(1, 101, 10, 9.5, 20.0, "v" * 11, "360p")]
    got = {
        backend: run_on(monkeypatch, backend, lambda: build_sessions(records, gap_s=1.0))
        for backend in BACKENDS
    }
    assert session_shape(got["python"]) == session_shape(got["numpy"])


def test_long_flow_covers_later_short_ones(monkeypatch):
    # An early long flow must keep extending the horizon across breaks.
    records = [
        FlowRecord(2, 100, 10, 0.0, 50.0, "w" * 11, "360p"),
        FlowRecord(2, 101, 10, 10.0, 11.0, "w" * 11, "360p"),
        FlowRecord(2, 102, 10, 49.0, 49.5, "w" * 11, "360p"),
        FlowRecord(2, 103, 10, 60.0, 61.0, "w" * 11, "360p"),
    ]
    got = {
        backend: run_on(monkeypatch, backend, lambda: build_sessions(records, gap_s=1.0))
        for backend in BACKENDS
    }
    assert [len(s.flows) for s in got["python"]] == [3, 1]
    assert session_shape(got["python"]) == session_shape(got["numpy"])


def test_backend_env_validation(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "fortran")
    with pytest.raises(ValueError):
        kernels_backend()
    monkeypatch.delenv("REPRO_KERNELS")
    assert kernels_backend() == "numpy"
    assert use_numpy()


def test_flow_table_is_a_sequence():
    records = random_flows(random.Random(1), n=10)
    table = FlowTable(records)
    assert len(table) == 10
    assert list(table) == records
    assert table[3] is records[3]


class TestStudyParity:
    """Figure-level parity over the shared simulated study.

    The pipeline fixture's server map, preferred reports, and focus
    records are backend-independent *inputs*; each analysis below is
    re-run from those inputs under both backends and compared exactly.
    """

    NAME = "EU1-ADSL"

    @pytest.fixture(scope="class")
    def inputs(self, pipeline):
        return (
            pipeline.focus_records[self.NAME],
            pipeline.preferred_reports[self.NAME],
            pipeline.server_map,
            pipeline.dataset(self.NAME).num_hours,
        )

    def test_nonpreferred_fraction(self, monkeypatch, inputs):
        records, report, smap, _ = inputs
        got = {
            b: run_on(
                monkeypatch, b, lambda: nonpreferred.nonpreferred_fraction(records, report, smap)
            )
            for b in BACKENDS
        }
        assert got["python"] == got["numpy"]

    def test_fig9_hourly_cdf(self, monkeypatch, inputs):
        records, report, smap, num_hours = inputs
        got = {
            b: run_on(
                monkeypatch,
                b,
                lambda: nonpreferred.hourly_nonpreferred_cdf(records, report, smap, num_hours),
            )
            for b in BACKENDS
        }
        assert got["python"]._values == got["numpy"]._values

    def test_fig13_video_cdf_and_counts(self, monkeypatch, inputs):
        records, report, smap, _ = inputs
        counts = {
            b: run_on(
                monkeypatch,
                b,
                lambda: hotspots.nonpreferred_requests_per_video(records, report, smap),
            )
            for b in BACKENDS
        }
        # Dict *order* matters too: downstream top-k relies on stable ties.
        assert list(counts["python"].items()) == list(counts["numpy"].items())
        cdfs = {
            b: run_on(
                monkeypatch,
                b,
                lambda: hotspots.nonpreferred_video_cdf(records, report, smap),
            )
            for b in BACKENDS
        }
        assert cdfs["python"]._values == cdfs["numpy"]._values

    def test_fig14_hot_videos(self, monkeypatch, inputs):
        records, report, smap, num_hours = inputs
        got = {
            b: run_on(
                monkeypatch,
                b,
                lambda: hotspots.top_nonpreferred_videos(records, report, smap, num_hours),
            )
            for b in BACKENDS
        }
        assert got["python"] == got["numpy"]

    def test_fig15_server_load(self, monkeypatch, inputs):
        records, report, smap, num_hours = inputs
        got = {
            b: run_on(
                monkeypatch,
                b,
                lambda: hotspots.preferred_server_load(records, report, smap, num_hours),
            )
            for b in BACKENDS
        }
        assert got["python"] == got["numpy"]

    def test_fig11_load_balance(self, monkeypatch, inputs):
        records, report, smap, num_hours = inputs
        got = {
            b: run_on(
                monkeypatch,
                b,
                lambda: loadbalance.analyze_load_balance(records, report, smap, num_hours),
            )
            for b in BACKENDS
        }
        assert got["python"] == got["numpy"]

    def test_preferred_report(self, monkeypatch, pipeline):
        dataset = pipeline.dataset(self.NAME)
        rtts = pipeline.rtt_campaigns[self.NAME]
        got = {
            b: run_on(
                monkeypatch,
                b,
                lambda: preferred.analyze_preferred(
                    dataset,
                    pipeline.server_map,
                    rtts,
                    focus_ips=pipeline.focus_ips[self.NAME],
                ),
            )
            for b in BACKENDS
        }
        assert got["python"] == got["numpy"]

    def test_table1_summary(self, monkeypatch, pipeline):
        dataset = pipeline.dataset(self.NAME)
        got = {b: run_on(monkeypatch, b, lambda: summarize(dataset)) for b in BACKENDS}
        assert got["python"] == got["numpy"]

    def test_summary_digest(self, monkeypatch, pipeline):
        dataset = pipeline.dataset(self.NAME)
        got = {b: run_on(monkeypatch, b, lambda: dataset.summary_digest()) for b in BACKENDS}
        assert got["python"] == got["numpy"]
