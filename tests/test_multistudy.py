"""Tests for the shared-world study mode."""

import pytest

from repro.core.pipeline import StudyPipeline
from repro.core.subnets import most_biased_subnet
from repro.sim.multistudy import build_shared_worlds, run_shared, run_shared_study
from repro.sim.scenarios import DATASET_NAMES

SHARED_SCALE = 0.015
SHARED_SEED = 7


@pytest.fixture(scope="module")
def shared_results():
    return run_shared_study(scale=SHARED_SCALE, seed=SHARED_SEED)


@pytest.fixture(scope="module")
def shared_pipeline(shared_results):
    return StudyPipeline(shared_results, landmark_count=60, seed=11)


class TestConstruction:
    def test_all_worlds_share_one_system(self, shared_results):
        systems = {id(r.world.system) for r in shared_results.values()}
        assert len(systems) == 1
        registries = {id(r.world.registry) for r in shared_results.values()}
        assert len(registries) == 1

    def test_every_dataset_present(self, shared_results):
        assert set(shared_results) == set(DATASET_NAMES)
        for result in shared_results.values():
            assert result.requests > 100
            assert len(result.dataset) > result.requests

    def test_client_spaces_disjoint(self, shared_results):
        seen = {}
        for name, result in shared_results.items():
            for ip in result.dataset.client_ips:
                assert ip not in seen, f"{name} shares client {ip} with {seen.get(ip)}"
                seen[ip] = name

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            build_shared_worlds(scale=0.01, names=("Mars",))

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            build_shared_worlds(scale=0.0)

    def test_run_shared_requires_shared_system(self):
        from repro.sim.driver import run_scenario

        a = run_scenario("EU1-FTTH", scale=0.002, seed=3)
        b = run_scenario("EU1-Campus", scale=0.002, seed=3)
        with pytest.raises(ValueError):
            run_shared({"a": a.world, "b": b.world})
        with pytest.raises(ValueError):
            run_shared({})

    def test_internal_dc_unreachable_from_outside(self, shared_results):
        """The EU2 in-ISP data center serves only EU2's customers."""
        internal = shared_results["EU2"].world.internal_dc_id
        assert internal is not None
        for name, result in shared_results.items():
            if name == "EU2":
                assert result.served_dc_counts.get(internal, 0) > 0
            else:
                assert result.served_dc_counts.get(internal, 0) == 0


class TestSharedShapes:
    """The paper's headline shapes must survive the mode switch."""

    def test_preferred_shares(self, shared_pipeline):
        for name in ("US-Campus", "EU1-Campus", "EU1-ADSL", "EU1-FTTH"):
            report = shared_pipeline.preferred_reports[name]
            assert report.byte_share(report.preferred_id) > 0.8, name

    def test_eu2_split(self, shared_pipeline):
        assert shared_pipeline.nonpreferred_fraction("EU2") > 0.5
        report = shared_pipeline.preferred_reports["EU2"]
        assert report.byte_share(report.preferred_id) < 0.6

    def test_nonpreferred_bands(self, shared_pipeline):
        for name in ("US-Campus", "EU1-Campus", "EU1-ADSL", "EU1-FTTH"):
            fraction = shared_pipeline.nonpreferred_fraction(name)
            assert 0.03 < fraction < 0.20, (name, fraction)

    def test_net3_bias(self, shared_pipeline):
        shares = shared_pipeline.subnet_shares("US-Campus")
        assert most_biased_subnet(shares).subnet_name == "Net-3"

    def test_eu2_load_balance(self, shared_pipeline):
        lb = shared_pipeline.load_balance("EU2")
        quiet, busy = lb.night_day_split()
        assert quiet > busy + 0.25

    def test_same_as_isolation_in_table2(self, shared_pipeline):
        for name, breakdown in shared_pipeline.as_breakdowns.items():
            if name == "EU2":
                assert breakdown.byte_fractions["same_as"] > 0.2
            else:
                assert breakdown.byte_fractions["same_as"] == 0.0


class TestDeterminism:
    def test_shared_runs_reproducible(self):
        def run_once():
            results = run_shared_study(scale=0.004, seed=13, names=("EU1-FTTH", "EU1-Campus"))
            return {
                name: [(r.src_ip, r.dst_ip, r.num_bytes, r.t_start)
                       for r in result.dataset.records]
                for name, result in results.items()
            }

        assert run_once() == run_once()


class TestInteraction:
    def test_cross_vantage_cache_warming(self):
        """EU1's vantage points share a preferred data center: a cold video
        pulled through by one vantage point's client is already warm when
        another vantage point's client asks for it."""
        import random

        from repro.cdn.catalog import Resolution

        worlds = build_shared_worlds(
            scale=0.01, seed=3, names=("EU1-ADSL", "EU1-Campus")
        )
        adsl = worlds["EU1-ADSL"]
        campus = worlds["EU1-Campus"]
        system = adsl.system
        # A video certainly absent from the shared preferred data center.
        video = system.catalog.by_rank(len(system.catalog) - 5)
        system.placement.register_cold(video)
        milan = adsl.google_dc_ids[0]
        assert campus.google_dc_ids[0] == milan  # same preferred DC
        assert not system.placement.is_resident(milan, video)

        rng = random.Random(0)

        def fetch(world):
            client = next(iter(world.population))
            return system.handle_request(
                client_ip=client.ip,
                client_site=world.vantage.client_site(client.ip),
                resolver=world.vantage.resolver_for(client.ip),
                video=video,
                resolution=Resolution.R360,
                t_s=1000.0,
                rng=rng,
            )

        first = fetch(adsl)
        assert "miss" in first.decision.causes  # cold for the first client
        second = fetch(campus)
        assert "miss" not in second.decision.causes  # warm for the second
