"""Tests for the continent taxonomy and the world atlas."""

import pytest

from repro.geo.cities import City, WorldAtlas, default_atlas
from repro.geo.coords import GeoPoint
from repro.geo.regions import Continent, continent_of_country, known_countries


class TestContinents:
    def test_known_countries(self):
        assert continent_of_country("US") is Continent.NORTH_AMERICA
        assert continent_of_country("it") is Continent.EUROPE
        assert continent_of_country("JP") is Continent.ASIA
        assert continent_of_country("BR") is Continent.SOUTH_AMERICA
        assert continent_of_country("AU") is Continent.OCEANIA
        assert continent_of_country("ZA") is Continent.AFRICA

    def test_unknown_country_raises(self):
        with pytest.raises(KeyError):
            continent_of_country("XX")

    def test_table3_buckets(self):
        assert Continent.NORTH_AMERICA.table3_bucket() == "N. America"
        assert Continent.EUROPE.table3_bucket() == "Europe"
        assert Continent.ASIA.table3_bucket() == "Others"
        assert Continent.SOUTH_AMERICA.table3_bucket() == "Others"

    def test_registry_nonempty(self):
        assert len(known_countries()) > 30


class TestAtlas:
    def test_default_atlas_is_cached(self):
        assert default_atlas() is default_atlas()

    def test_contains_vantage_and_dc_cities(self):
        atlas = default_atlas()
        for name in ("West Lafayette", "Turin", "Madrid", "Amsterdam",
                     "Mountain View", "Tokyo", "Sao Paulo"):
            assert name in atlas

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            default_atlas().get("Atlantis")

    def test_city_continent(self):
        atlas = default_atlas()
        assert atlas.get("Turin").continent is Continent.EUROPE
        assert atlas.get("Chicago").continent is Continent.NORTH_AMERICA

    def test_cities_in_continent_counts(self):
        atlas = default_atlas()
        assert len(atlas.cities_in(Continent.EUROPE)) >= 14
        assert len(atlas.cities_in(Continent.NORTH_AMERICA)) >= 13
        assert len(atlas.cities_in(Continent.AFRICA)) >= 1

    def test_nearest_snaps_to_city(self):
        atlas = default_atlas()
        near_turin = GeoPoint(45.1, 7.7)
        nearest = atlas.nearest(near_turin)
        assert nearest is not None
        assert nearest.name == "Turin"

    def test_nearest_with_max_km(self):
        atlas = default_atlas()
        mid_atlantic = GeoPoint(40.0, -40.0)
        assert atlas.nearest(mid_atlantic, max_km=500.0) is None
        assert atlas.nearest(mid_atlantic) is not None

    def test_duplicate_city_rejected(self):
        city = City("X", "US", GeoPoint(1.0, 1.0))
        with pytest.raises(ValueError):
            WorldAtlas([city, city])

    def test_all_cities_have_known_countries(self):
        for city in default_atlas():
            # raises KeyError if a country is missing from the registry
            assert city.continent is not None
