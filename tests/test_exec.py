"""Unit tests for the parallel execution layer (:mod:`repro.exec`)."""

import pickle

import pytest

from repro.exec import (
    BACKENDS,
    ENV_BACKEND,
    ENV_WORKERS,
    ExecutionError,
    ParallelExecutor,
    TaskTiming,
    default_executor,
)
from repro.reporting.timing import render_timing_table, timing_summary, write_timing_json


def _square(x):
    return x * x


def _explode_on_three(x):
    if x == 3:
        raise ValueError(f"poisoned item {x}")
    return x * x


def _return_unpicklable(_x):
    return lambda: None  # noqa: E731 - deliberately unpicklable


def _nested_failing_map(_x):
    # A task that fans out its own executor and hits a failure there.
    return ParallelExecutor("serial").map(_explode_on_three, [3])


class TestConstruction:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ParallelExecutor("fork-bomb")

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            ParallelExecutor("thread", max_workers=0)

    def test_from_env_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        monkeypatch.delenv(ENV_WORKERS, raising=False)
        executor = ParallelExecutor.from_env()
        assert executor.backend == "serial"
        assert executor.max_workers is None

    def test_from_env_reads_backend_and_workers(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "Thread")
        monkeypatch.setenv(ENV_WORKERS, "3")
        executor = ParallelExecutor.from_env()
        assert executor.backend == "thread"
        assert executor.max_workers == 3

    def test_from_env_rejects_garbage_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "hyperdrive")
        with pytest.raises(ValueError, match="unknown backend"):
            ParallelExecutor.from_env()

    def test_default_executor_prefers_explicit(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "thread")
        explicit = ParallelExecutor("serial")
        assert default_executor(explicit) is explicit
        assert default_executor(None).backend == "thread"


class TestMapping:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_in_input_order(self, backend):
        executor = ParallelExecutor(backend, max_workers=2)
        assert executor.map(_square, [3, 1, 4, 1, 5]) == [9, 1, 16, 1, 25]

    def test_empty_batch(self):
        executor = ParallelExecutor("thread")
        assert executor.map(_square, []) == []
        assert executor.stats[0].timings == []

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            ParallelExecutor().map(_square, [1, 2], labels=["only-one"])

    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            ParallelExecutor().map(_square, [1], on_error="explode")


class TestFaultContainment:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_failure_does_not_lose_siblings(self, backend):
        executor = ParallelExecutor(backend, max_workers=2)
        results = executor.map(
            _explode_on_three, [1, 2, 3, 4], on_error="return"
        )
        assert results[0] == 1 and results[1] == 4 and results[3] == 16
        error = results[2]
        assert isinstance(error, ExecutionError)
        assert error.label == "task[2]"
        assert error.cause_type == "ValueError"
        assert "poisoned item 3" in error.cause_message
        assert "ValueError: poisoned item 3" in error.worker_traceback

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_raise_mode_surfaces_first_failure_after_batch(self, backend):
        executor = ParallelExecutor(backend, max_workers=2)
        with pytest.raises(ExecutionError, match="poisoned item 3"):
            executor.map(_explode_on_three, [1, 3, 2, 4])
        # The batch still ran to completion before raising.
        assert len(executor.timings) == 4
        assert sum(1 for t in executor.timings if not t.ok) == 1

    def test_execution_error_survives_pickling(self):
        error = ExecutionError("task[0]", "ValueError", "boom", "trace text")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.label == "task[0]"
        assert clone.worker_traceback == "trace text"

    def test_execution_error_attempts_survive_repickling(self):
        # Regression: __reduce__ must carry all five fields.  Rebuilding
        # from the first four silently reset attempts to 1 the second
        # time the error crossed a process boundary (nested pools).
        error = ExecutionError("task[0]", "ValueError", "boom", "tb",
                               attempts=4)
        once = pickle.loads(pickle.dumps(error))
        twice = pickle.loads(pickle.dumps(once))
        assert once.attempts == 4
        assert twice.attempts == 4
        assert twice.cause_type == "ValueError"
        assert twice.worker_traceback == "tb"

    def test_nested_pool_failure_keeps_root_cause(self):
        # An inner pool's ExecutionError re-contained by an outer pool
        # must surface the *root* cause, not "ExecutionError".
        inner = ExecutionError("inner[2]", "KeyError", "lost",
                               "innermost traceback")
        shipped = pickle.loads(pickle.dumps(inner))  # inner pool boundary
        outer = ExecutionError.wrap("outer[0]", shipped, "outer traceback")
        final = pickle.loads(pickle.dumps(outer))    # outer pool boundary
        assert final.label == "outer[0] -> inner[2]"
        assert final.cause_type == "KeyError"
        assert final.cause_message == "lost"
        assert final.worker_traceback == "innermost traceback"

    def test_live_nested_pools_preserve_diagnosis(self):
        executor = ParallelExecutor("process", max_workers=2)
        results = executor.map(
            _nested_failing_map, ["run"], on_error="return"
        )
        error = results[0]
        assert isinstance(error, ExecutionError)
        assert error.cause_type == "ValueError"
        assert "poisoned item 3" in error.cause_message
        assert "ValueError: poisoned item 3" in error.worker_traceback
        assert " -> " in error.label

    def test_unpicklable_result_contained_not_fatal(self):
        executor = ParallelExecutor("process", max_workers=2)
        results = executor.map(
            _return_unpicklable, ["a", "b"], on_error="return"
        )
        assert all(isinstance(r, ExecutionError) for r in results)


class TestTimings:
    def test_timings_accumulate_across_batches(self):
        executor = ParallelExecutor("serial")
        executor.map(_square, [1, 2], labels=["a", "b"])
        executor.map(_square, [3], labels=["c"])
        assert [t.label for t in executor.timings] == ["a", "b", "c"]
        assert all(t.ok and t.seconds >= 0 for t in executor.timings)
        executor.clear_stats()
        assert executor.timings == []

    def test_map_stats_summary(self):
        executor = ParallelExecutor("serial")
        executor.map(_square, [1, 2, 3])
        stats = executor.stats[0]
        assert stats.backend == "serial"
        assert stats.wall_s > 0
        assert stats.task_seconds == pytest.approx(
            sum(t.seconds for t in stats.timings)
        )
        assert stats.straggler() in stats.timings

    def test_timing_report_rendering(self):
        timings = [
            TaskTiming(label="fast", seconds=0.01, ok=True),
            TaskTiming(label="slow", seconds=0.50, ok=False),
        ]
        text = render_timing_table(timings)
        lines = text.splitlines()
        assert any("slow" in line and "FAILED" in line for line in lines)
        # Slowest first.
        assert lines.index(next(line for line in lines if "slow" in line)) < \
            lines.index(next(line for line in lines if "fast" in line))

    def test_timing_summary_json(self, tmp_path):
        executor = ParallelExecutor("serial")
        executor.map(_square, [1, 2], labels=["x", "y"])
        summary = write_timing_json(executor.stats, tmp_path / "timing.json")
        assert summary["backend"] == "serial"
        assert summary["tasks"] == 2
        assert summary["straggler"]["label"] in ("x", "y")
        assert (tmp_path / "timing.json").exists()
        assert timing_summary([])["tasks"] == 0
