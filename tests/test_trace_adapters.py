"""Tests for external flow-log import."""

import pytest

from repro.trace.adapters import (
    ColumnMapping,
    TSTAT_TCP_COMPLETE_EXAMPLE,
    import_flow_log,
)


def write_log(tmp_path, lines, name="external.log"):
    path = tmp_path / name
    path.write_text("\n".join(lines) + "\n")
    return path


SIMPLE = ColumnMapping(
    src_ip=0, dst_ip=1, num_bytes=2, t_start=3, t_end=4, video_id=5, resolution=6
)


class TestImport:
    def test_basic_import(self, tmp_path):
        path = write_log(tmp_path, [
            "# a comment",
            "10.0.0.1 173.194.0.5 50000 100.0 110.0 AAAAAAAAAAA 360p",
            "10.0.0.2 173.194.0.6 900 105.0 105.2 BBBBBBBBBBB 240p",
        ])
        result = import_flow_log(path, SIMPLE)
        assert result.parsed_lines == 2
        assert result.skipped_lines == 0
        first = result.records[0]
        assert first.num_bytes == 50000
        assert first.t_start == pytest.approx(0.0)   # t_zero auto-detected
        assert first.t_end == pytest.approx(10.0)
        assert result.records[1].t_start == pytest.approx(5.0)

    def test_malformed_lines_counted_not_fatal(self, tmp_path):
        path = write_log(tmp_path, [
            "10.0.0.1 173.194.0.5 50000 100.0 110.0 AAAAAAAAAAA 360p",
            "totally broken line",
            "10.0.0.1 nonsense 50000 100.0 110.0 AAAAAAAAAAA 360p",
            "10.0.0.1 173.194.0.5 50000 110.0 100.0 AAAAAAAAAAA 360p",  # ends early
        ])
        result = import_flow_log(path, SIMPLE)
        assert result.parsed_lines == 1
        assert result.skipped_lines == 3
        assert result.skip_fraction == pytest.approx(0.75)

    def test_duration_based_mapping(self, tmp_path):
        mapping = ColumnMapping(
            src_ip=0, dst_ip=1, num_bytes=2, t_start=3, duration=4
        )
        path = write_log(tmp_path, ["10.0.0.1 10.0.0.2 5000 50.0 2.5"])
        result = import_flow_log(path, mapping)
        record = result.records[0]
        assert record.t_end - record.t_start == pytest.approx(2.5)
        assert record.video_id == "-" * 11   # placeholder
        assert record.resolution == "?"

    def test_millisecond_times(self, tmp_path):
        mapping = ColumnMapping(
            src_ip=0, dst_ip=1, num_bytes=2, t_start=3, t_end=4,
            time_unit_s=0.001,
        )
        path = write_log(tmp_path, [
            "10.0.0.1 10.0.0.2 5000 1600000000000 1600000005000",
        ])
        record = import_flow_log(path, mapping).records[0]
        assert record.duration_s == pytest.approx(5.0)

    def test_explicit_t_zero(self, tmp_path):
        mapping = ColumnMapping(
            src_ip=0, dst_ip=1, num_bytes=2, t_start=3, t_end=4, t_zero=90.0
        )
        path = write_log(tmp_path, ["10.0.0.1 10.0.0.2 5000 100.0 101.0"])
        record = import_flow_log(path, mapping).records[0]
        assert record.t_start == pytest.approx(10.0)

    def test_custom_delimiter(self, tmp_path):
        mapping = ColumnMapping(
            src_ip=0, dst_ip=1, num_bytes=2, t_start=3, t_end=4, delimiter=","
        )
        path = write_log(tmp_path, ["10.0.0.1,10.0.0.2,5000,1.0,2.0"])
        assert import_flow_log(path, mapping).parsed_lines == 1

    def test_records_sorted(self, tmp_path):
        path = write_log(tmp_path, [
            "10.0.0.1 10.0.0.2 5000 200.0 201.0 AAAAAAAAAAA 360p",
            "10.0.0.1 10.0.0.2 5000 100.0 101.0 AAAAAAAAAAA 360p",
        ])
        result = import_flow_log(path, SIMPLE)
        starts = [r.t_start for r in result.records]
        assert starts == sorted(starts)

    def test_mapping_validation(self):
        with pytest.raises(ValueError):
            ColumnMapping(src_ip=0, dst_ip=1, num_bytes=2, t_start=3)
        with pytest.raises(ValueError):
            ColumnMapping(src_ip=0, dst_ip=1, num_bytes=2, t_start=3,
                          t_end=4, time_unit_s=0.0)

    def test_tstat_example_mapping_shape(self, tmp_path):
        # 30 columns of a synthetic tcp_complete-like line.
        fields = ["0"] * 30
        fields[0] = "151.52.1.10"
        fields[14] = "173.194.7.7"
        fields[21] = "123456"
        fields[28] = "1283553000000"   # ms
        fields[29] = "1283553008000"
        path = write_log(tmp_path, [" ".join(fields)])
        result = import_flow_log(path, TSTAT_TCP_COMPLETE_EXAMPLE)
        record = result.records[0]
        assert record.num_bytes == 123456
        assert record.duration_s == pytest.approx(8.0)

    def test_analyses_run_on_imported_records(self, tmp_path):
        from repro.core.flows import classify_flows

        path = write_log(tmp_path, [
            "10.0.0.1 173.194.0.5 500 1.0 1.1 AAAAAAAAAAA 360p",
            "10.0.0.1 173.194.0.5 5000000 1.3 9.0 AAAAAAAAAAA 360p",
        ])
        records = import_flow_log(path, SIMPLE).records
        classes = classify_flows(records)
        assert len(classes.control) == 1
        assert len(classes.video) == 1
