"""Tests for the sharded scale-out layer (repro.shard).

The load-bearing property is *byte parity*: a study partitioned into
(vantage, time-window) shards, analyzed over shared-memory columns and
merged, must reproduce the batch path's report text, session structure
and content digests exactly — at any shard grain, on any executor
backend, and with every shared-memory segment unlinked afterwards.
"""

from __future__ import annotations

import gc
import io
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.sessions import build_sessions
from repro.exec.executor import ParallelExecutor
from repro.faults import report as degradation
from repro.faults.plan import clear_current_plan, set_current_plan, FaultPlan
from repro.reporting.timing import render_timing_table, timing_summary
from repro.shard import (
    SegmentScope,
    ShardKey,
    attach_table,
    live_segments,
    merge_cdf_samples,
    merge_grouped_sums,
    merge_histograms,
    merge_hourly,
    merge_session_sizes,
    merge_sessions,
    merge_traffic,
    partition_table,
    publish_table,
    session_partial,
    shm_mode,
)
from repro.shard import shm as shm_mod
from repro.shard.shm import ENV_SHM, InlineHandle, view_table
from repro.shard.study import run_sharded_study
from repro.sim.driver import clear_cache, run_all
from repro.sim.multistudy import run_shared_studies
from repro.stream.accumulators import HourlyShareAccumulator, TrafficAccumulator
from repro.stream.events import StreamWindow
from repro.stream.study import render_stream_report
from repro.trace.columnar import FlowTable, resident_columnar
from repro.trace.records import FlowRecord


def flow(src=1, vid="V" * 11, t0=0.0, dur=1.0, nbytes=5000, dst=100):
    return FlowRecord(
        src_ip=src, dst_ip=dst, num_bytes=nbytes,
        t_start=t0, t_end=t0 + dur, video_id=vid, resolution="360p",
    )


def sample_records(n=20):
    """A small table: sorted t_start, several clients/videos/servers."""
    return [
        flow(src=1 + i % 3, vid=["A" * 11, "B" * 11][i % 2],
             t0=float(i) * 7.0, dur=1.0 + i % 4, nbytes=1000 + i,
             dst=100 + i % 2)
        for i in range(n)
    ]


# ----------------------------------------------------------------- partition


class TestPartition:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            partition_table(FlowTable(sample_records()), 0.0, "d")
        with pytest.raises(ValueError):
            partition_table(FlowTable(sample_records()), -5.0, "d")

    def test_unsorted_records_rejected(self):
        records = [flow(t0=100.0), flow(t0=1.0)]
        with pytest.raises(ValueError, match="sorted"):
            partition_table(FlowTable(records), 60.0, "d")

    def test_empty_table_yields_no_shards(self):
        assert partition_table(FlowTable([]), 60.0, "d") == []

    def test_shards_cover_rows_contiguously(self):
        records = sample_records(30)  # t_start 0..203
        table = FlowTable(records)
        shards = partition_table(table, 50.0, "d")
        assert shards[0].lo == 0 and shards[-1].hi == len(records)
        for a, b in zip(shards, shards[1:]):
            assert a.hi == b.lo  # contiguous, no overlap, no gap
        for shard in shards:
            for r in records[shard.lo:shard.hi]:
                assert shard.key.t_lo <= r.t_start < shard.key.t_hi

    def test_sparse_windows_are_skipped(self):
        records = [flow(t0=1.0), flow(t0=500.0)]  # nothing in [60, 480)
        shards = partition_table(FlowTable(records), 60.0, "d")
        assert [s.key.index for s in shards] == [0, 8]
        assert [len(s) for s in shards] == [1, 1]

    def test_shard_key_identity(self):
        shards = partition_table(FlowTable(sample_records()), 60.0, "US-Campus")
        key = shards[0].key
        assert key == ShardKey("US-Campus", 0, 0.0, 60.0)
        assert key.label == "US-Campus/w0"
        assert key.cache_fingerprint() == {
            "dataset": "US-Campus", "index": 0, "t_lo": 0.0, "t_hi": 60.0,
        }


# ------------------------------------------------------------- merge: exact


class TestMergeReductions:
    def test_grouped_sums_exact_and_first_occurrence_ordered(self):
        big = 2**62
        parts = [{"b": big, "a": 1}, {"a": big, "c": 2}, {"b": 1}]
        merged = merge_grouped_sums(parts)
        assert merged == {"b": big + 1, "a": big + 1, "c": 2}
        assert list(merged) == ["b", "a", "c"]  # first occurrence wins
        assert all(isinstance(v, int) for v in merged.values())

    def test_histograms_union_buckets(self):
        merged = merge_histograms([{"1": 3, "2": 1}, {"2": 4, ">9": 2}])
        assert merged == {"1": 3, "2": 5, ">9": 2}

    def test_cdf_merge_equals_sorted_concatenation(self):
        parts = [[1.0, 4.0, 9.0], [], [0.5, 4.0], [2.0]]
        assert merge_cdf_samples(parts) == sorted(sum(parts, []))

    def test_merge_hourly(self):
        a, b = HourlyShareAccumulator(), HourlyShareAccumulator()
        a._counts = {10: {0: 2, 1: 1}}
        b._counts = {10: {1: 3}, 11: {5: 1}}
        merged = merge_hourly([a, b])
        assert merged._counts == {10: {0: 2, 1: 4}, 11: {5: 1}}

    def test_merge_traffic_preserves_server_first_occurrence_order(self):
        records = sample_records(24)
        whole = TrafficAccumulator()
        whole.observe_window(StreamWindow(0, 0.0, 1e9, FlowTable(records)))
        cut = 10
        parts = []
        for chunk in (records[:cut], records[cut:]):
            acc = TrafficAccumulator()
            acc.observe_window(StreamWindow(0, 0.0, 1e9, FlowTable(chunk)))
            parts.append(acc)
        merged = merge_traffic(parts)
        assert merged.flows == whole.flows
        assert merged.total_bytes == whole.total_bytes
        assert merged._clients == whole._clients
        assert list(merged._servers) == list(whole._servers)
        for ip in whole._servers:
            m, w = merged._servers[ip], whole._servers[ip]
            assert (m.num_bytes, m.num_flows, m.video_flows) == \
                (w.num_bytes, w.num_flows, w.video_flows)


# --------------------------------------------------- merge: session seams


def time_chunks(records, window_s):
    """Partition time-sorted records at tumbling-window boundaries."""
    chunks, current, edge = [], [], window_s
    for record in records:
        while record.t_start >= edge:
            if current:
                chunks.append(current)
                current = []
            edge += window_s
        current.append(record)
    if current:
        chunks.append(current)
    return chunks


session_rows = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=3),        # client
        st.integers(min_value=0, max_value=2),        # video index
        st.floats(min_value=0.0, max_value=500.0),    # start
        st.floats(min_value=0.1, max_value=40.0),     # duration
    ),
    min_size=1,
    max_size=50,
)


class TestSessionStitching:
    @given(session_rows,
           st.floats(min_value=0.5, max_value=30.0),   # gap
           st.floats(min_value=5.0, max_value=120.0))  # shard window
    @settings(max_examples=60, deadline=None)
    def test_merge_sessions_equals_whole_dataset_build(self, rows, gap, window):
        """Stitching any window partition reproduces the batch sessions."""
        videos = ["A" * 11, "B" * 11, "C" * 11]
        records = sorted(
            (flow(src=c, vid=videos[v], t0=t0, dur=dur) for c, v, t0, dur in rows),
            key=lambda r: (r.t_start, r.t_end),
        )
        whole = build_sessions(records, gap_s=gap)
        chunks = time_chunks(records, window)
        merged = merge_sessions(
            [build_sessions(chunk, gap_s=gap) for chunk in chunks], gap_s=gap
        )
        assert merged == whole
        assert [s.flows for s in merged] == [s.flows for s in whole]

    @given(session_rows,
           st.floats(min_value=0.5, max_value=30.0),
           st.floats(min_value=5.0, max_value=120.0))
    @settings(max_examples=60, deadline=None)
    def test_merge_session_sizes_matches_batch_both_kernels(
        self, rows, gap, window
    ):
        videos = ["A" * 11, "B" * 11, "C" * 11]
        records = sorted(
            (flow(src=c, vid=videos[v], t0=t0, dur=dur) for c, v, t0, dur in rows),
            key=lambda r: (r.t_start, r.t_end),
        )
        expected = [s.num_flows for s in build_sessions(records, gap_s=gap)]
        chunks = time_chunks(records, window)
        python_partials = [session_partial(chunk, gap) for chunk in chunks]
        numpy_partials = [session_partial(FlowTable(chunk), gap) for chunk in chunks]
        assert merge_session_sizes(python_partials, gap) == expected
        assert merge_session_sizes(numpy_partials, gap) == expected

    def test_session_partial_gap_validation(self):
        with pytest.raises(ValueError):
            session_partial(sample_records(), 0.0)

    def test_pass_through_sessions_are_shared_not_copied(self):
        records = [flow(t0=0.0), flow(t0=1000.0)]
        shard_sessions = [build_sessions(records[:1], gap_s=1.0),
                          build_sessions(records[1:], gap_s=1.0)]
        merged = merge_sessions(shard_sessions, gap_s=1.0)
        assert merged[0] is shard_sessions[0][0]
        assert merged[1] is shard_sessions[1][0]


# -------------------------------------------------------------- shm transport


class TestShmTransport:
    def test_mode_parsing(self, monkeypatch):
        monkeypatch.setenv(ENV_SHM, "bogus")
        with pytest.raises(ValueError):
            shm_mode()
        monkeypatch.setenv(ENV_SHM, "off")
        assert shm_mode() == "off"
        monkeypatch.delenv(ENV_SHM)
        assert shm_mode() in ("shm", "file")

    @pytest.mark.parametrize("mode", ["shm", "file"])
    def test_segment_round_trip_is_exact(self, mode, monkeypatch):
        monkeypatch.setenv(ENV_SHM, mode)
        records = sample_records(25)
        table = FlowTable(records)
        with SegmentScope() as scope:
            handle = publish_table(table, name=scope.name_for("t"))
            assert handle.mode == mode and handle.rows == len(records)
            # Same-process attach is a no-op view: the original object.
            assert attach_table(handle) is table
            # Emulate a foreign process: hide the publisher's table so
            # attach decodes the segment bytes through the mapped buffer.
            shm_mod._LIVE[handle.name].table = None
            attached = attach_table(handle)
            assert attached is not table
            assert len(attached) == len(records)
            assert list(attached.records) == records
            shm_mod._LIVE[handle.name].table = table
            del attached
            gc.collect()
        assert live_segments() == []

    def test_off_mode_degrades_to_inline_records(self, monkeypatch):
        monkeypatch.setenv(ENV_SHM, "off")
        records = sample_records(8)
        with SegmentScope() as scope:
            handle = publish_table(FlowTable(records), name=scope.name_for("t"))
            assert isinstance(handle, InlineHandle)
            attached = attach_table(handle)
            assert isinstance(attached, FlowTable)
            assert list(attached.records) == records
        assert live_segments() == []

    def test_view_table_slices_zero_copy(self):
        records = sample_records(12)
        view = view_table(FlowTable(records), 3, 9)
        assert len(view) == 6
        assert list(view.records) == records[3:9]

    def test_scope_unlinks_on_exception(self):
        name_holder = {}
        with pytest.raises(RuntimeError):
            with SegmentScope() as scope:
                name = scope.name_for("crash")
                name_holder["name"] = name
                publish_table(FlowTable(sample_records()), name=name)
                raise RuntimeError("worker crashed mid-fan-out")
        assert live_segments() == []
        name = name_holder["name"]
        if os.path.isabs(name):
            assert not os.path.exists(name)
        else:
            assert not os.path.exists(os.path.join("/dev/shm", name))

    def test_scope_tolerates_never_published_names(self):
        with SegmentScope() as scope:
            scope.name_for("task-that-never-ran")
        assert live_segments() == []

    def test_nbytes_and_resident_columnar(self):
        table = FlowTable(sample_records())
        assert table.nbytes() == 0  # nothing materialised yet
        table.columns()
        resident = table.nbytes()
        assert resident > 0
        table.session_index()
        assert table.nbytes() > resident  # index arrays count too
        summary = resident_columnar()
        assert summary["tables"] >= 1
        assert summary["resident_bytes"] >= table.nbytes()


# ------------------------------------------------------ executor payload bytes


def _double(x):
    return x * 2


class TestPayloadBytes:
    def test_in_process_backends_serialize_nothing(self):
        for backend in ("serial", "thread"):
            executor = ParallelExecutor(backend, max_workers=2)
            assert executor.map(_double, [1, 2, 3]) == [2, 4, 6]
            stats = executor.stats[-1]
            assert stats.dispatch_bytes == 0
            assert stats.result_bytes == 0

    def test_process_backend_measures_both_directions(self):
        executor = ParallelExecutor("process", max_workers=2)
        assert executor.map(_double, ["x", "y", "z"]) == ["xx", "yy", "zz"]
        stats = executor.stats[-1]
        assert stats.dispatch_bytes > 0
        assert stats.result_bytes > 0
        for timing in stats.timings:
            assert timing.dispatch_bytes > 0
            assert timing.result_bytes > 0

    def test_timing_summary_carries_payload_totals(self):
        executor = ParallelExecutor("process", max_workers=2)
        executor.map(_double, [1, 2, 3])
        summary = timing_summary(executor.stats)
        assert summary["dispatch_bytes"] == sum(
            r["dispatch_bytes"] for r in summary["timings"]
        ) > 0
        assert summary["result_bytes"] == sum(
            r["result_bytes"] for r in summary["timings"]
        ) > 0
        table = render_timing_table(executor.stats[-1].timings)
        assert "payload KB" in table


# --------------------------------------------------------- study byte parity


@pytest.fixture(scope="module")
def sharded_baseline():
    """Serial sharded study at a small scale: (report text, digests)."""
    study = run_sharded_study(scale=0.004, seed=7, landmark_count=40)
    return render_stream_report(study), study.digests()


class TestShardedStudyParity:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_sharded_study_is_byte_identical_at_two_grains(self, tmp_path):
        base_args = ("study", "--scale", "0.004", "--landmarks", "40",
                     "--digests")
        code, batch = self.run_cli(*base_args)
        assert code == 0
        stats_path = tmp_path / "shard_stats.json"
        os.environ["REPRO_SHARD_STATS"] = str(stats_path)
        try:
            for window in ("86400", "7200"):
                code, sharded = self.run_cli(*base_args, "--sharded",
                                             "--shard-window-s", window)
                assert code == 0
                assert sharded == batch
        finally:
            del os.environ["REPRO_SHARD_STATS"]
        stats = json.loads(stats_path.read_text())
        assert set(stats) >= {"shard_window_s", "peak_rss_kb", "datasets",
                              "dispatch_bytes", "result_bytes"}
        assert len(stats["datasets"]) == 5
        assert live_segments() == []

    def test_sharded_rejects_batch_only_flags(self):
        for flag in ("--full", "--validate", "--shared"):
            code, text = self.run_cli("study", "--sharded", flag,
                                      "--scale", "0.004", "--landmarks", "40")
            assert code == 2
            assert text == ""
        code, text = self.run_cli("study", "--sharded", "--stream",
                                  "--scale", "0.004")
        assert code == 2
        assert text == ""

    def test_thread_backend_matches_serial(self, sharded_baseline):
        text, digests = sharded_baseline
        study = run_sharded_study(
            scale=0.004, seed=7, landmark_count=40,
            executor=ParallelExecutor("thread", max_workers=2),
        )
        assert render_stream_report(study) == text
        assert study.digests() == digests
        assert live_segments() == []

    def test_process_backend_matches_serial(self, sharded_baseline):
        text, digests = sharded_baseline
        study = run_sharded_study(
            scale=0.004, seed=7, landmark_count=40,
            executor=ParallelExecutor("process", max_workers=2),
        )
        assert render_stream_report(study) == text
        assert study.digests() == digests
        del study
        gc.collect()
        assert live_segments() == []

    def test_shard_window_validation(self):
        with pytest.raises(ValueError):
            run_sharded_study(scale=0.004, shard_window_s=0.0)

    def test_task_crash_plan_leaves_no_segments(self, sharded_baseline):
        """Satellite 6: injected worker crashes never leak segments."""
        text, digests = sharded_baseline
        degradation.reset()
        set_current_plan(FaultPlan(seed=3, task_crash=1.0,
                                   max_failures_per_task=2))
        try:
            study = run_sharded_study(scale=0.004, seed=7, landmark_count=40)
            assert render_stream_report(study) == text
            assert study.digests() == digests
        finally:
            clear_current_plan()
            degradation.reset()
        assert live_segments() == []


class TestShardedGoldenDigests:
    def test_sharded_digests_match_golden_fixture(self):
        """The golden study digests hold on the sharded path too."""
        from pathlib import Path

        golden = Path(__file__).parent / "golden" / "study_scale_0.01.digests"
        expected = {
            line.split()[1]: line.split()[2]
            for line in golden.read_text(encoding="ascii").splitlines()
            if line.strip()
        }
        study = run_sharded_study(scale=0.01, seed=7, landmark_count=40)
        assert study.digests() == expected


# --------------------------------------------------------- transport wiring


class TestShmTransportWiring:
    def test_run_all_shm_transport_matches_plain(self):
        clear_cache()
        try:
            plain = run_all(scale=0.004, seed=7)
            digests = {n: r.dataset.content_digest() for n, r in plain.items()}
            clear_cache()
            shm = run_all(scale=0.004, seed=7, transport="shm")
            assert {n: r.dataset.content_digest() for n, r in shm.items()} \
                == digests
            for name in plain:
                assert list(plain[name].dataset.records) \
                    == list(shm[name].dataset.records)
            del plain, shm
        finally:
            clear_cache()
        gc.collect()
        assert live_segments() == []

    def test_run_all_rejects_unknown_transport(self):
        with pytest.raises(ValueError, match="transport"):
            run_all(scale=0.004, transport="carrier-pigeon")

    def test_run_shared_studies_shm_transport_matches_plain(self):
        configs = [{"scale": 0.002, "seed": 7, "duration_s": 21600.0}]
        plain = run_shared_studies(configs, executor=ParallelExecutor("serial"))
        shm = run_shared_studies(configs, executor=ParallelExecutor("serial"),
                                 transport="shm")
        for p, s in zip(plain, shm):
            assert set(p) == set(s)
            for name in p:
                assert p[name].dataset.content_digest() \
                    == s[name].dataset.content_digest()
        del plain, shm
        gc.collect()
        assert live_segments() == []

    def test_run_shared_studies_rejects_unknown_transport(self):
        with pytest.raises(ValueError, match="transport"):
            run_shared_studies([{"scale": 0.002}], transport="bogus")
