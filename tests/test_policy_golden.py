"""Per-policy golden-digest regression tests.

``tests/golden/study_<policy>_0.01.digests`` pins the per-dataset content
digests of the five-dataset study at scale 0.01, seed 7, for every
registered selection policy.  A drift in any file means the corresponding
policy's RNG schedule or decision logic changed; refresh deliberately
with ``scripts/update_golden.sh`` and call the change out in review.

The ``preferred`` fixture must stay byte-identical to the baseline
fixture (``study_scale_0.01.digests``) — the registry's preferred factory
is the same code path the baseline study runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cdn.selection import registered_policy_kinds
from repro.sim.driver import run_all

GOLDEN_DIR = Path(__file__).parent / "golden"
BASELINE = GOLDEN_DIR / "study_scale_0.01.digests"

SCALE = 0.01
SEED = 7

KINDS = registered_policy_kinds()


def fixture_path(kind: str) -> Path:
    return GOLDEN_DIR / f"study_{kind}_0.01.digests"


def fixture_digests(path: Path) -> dict:
    lines = [
        line.strip()
        for line in path.read_text(encoding="ascii").splitlines()
        if line.strip()
    ]
    return {line.split()[1]: line.split()[2] for line in lines}


def test_every_registered_policy_has_a_fixture():
    missing = [kind for kind in KINDS if not fixture_path(kind).exists()]
    assert not missing, (
        f"no golden fixture for {missing}; run scripts/update_golden.sh"
    )


@pytest.mark.parametrize("kind", KINDS)
def test_fixture_is_well_formed(kind):
    lines = [
        line.strip()
        for line in fixture_path(kind).read_text(encoding="ascii").splitlines()
        if line.strip()
    ]
    assert lines, f"golden fixture for {kind!r} is empty"
    for line in lines:
        parts = line.split()
        assert len(parts) == 3 and parts[0] == "digest", line
        assert len(parts[2]) == 64 and int(parts[2], 16) >= 0, line
    names = [line.split()[1] for line in lines]
    assert names == sorted(names)


def test_preferred_fixture_is_the_baseline_fixture():
    """The registry's preferred policy IS the baseline study."""
    assert fixture_digests(fixture_path("preferred")) == fixture_digests(BASELINE)


@pytest.mark.parametrize("kind", KINDS)
def test_digests_match_golden(kind):
    expected = fixture_digests(fixture_path(kind))
    results = run_all(scale=SCALE, seed=SEED, policy_kind=kind)
    current = {
        name: result.dataset.content_digest()
        for name, result in results.items()
    }
    assert set(current) == set(expected)
    drifted = {
        name: (expected[name], digest)
        for name, digest in current.items()
        if digest != expected[name]
    }
    assert not drifted, (
        f"policy {kind!r} digests drifted from {fixture_path(kind).name} "
        f"(run scripts/update_golden.sh if intentional): {drifted}"
    )


def test_policies_produce_distinct_traces():
    """Distinct mechanisms must leave distinct footprints at this scale.

    ``geographic`` ranks by distance instead of RTT and ``partition``
    Borda-merges rankings — on some datasets those coincide with
    ``preferred`` (that is fine, and covered by the per-kind fixtures) —
    but across all five datasets each policy's digest *set* is unique.
    """
    digest_sets = {
        kind: tuple(sorted(fixture_digests(fixture_path(kind)).items()))
        for kind in KINDS
        if kind != "preferred"  # geographic aliases preferred's factory,
        # but ranks by distance, so it still differs; preferred==baseline
        # is asserted separately above.
    }
    digest_sets["preferred"] = tuple(
        sorted(fixture_digests(BASELINE).items())
    )
    seen = {}
    for kind, digests in digest_sets.items():
        assert digests not in seen, (
            f"policies {seen[digests]!r} and {kind!r} produced identical "
            "study digests — the mechanism is not reaching the trace"
        )
        seen[digests] = kind
