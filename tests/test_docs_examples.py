"""Executable coverage of the docs/api_tour.md walk-through.

Every section of the API tour is exercised here (at small scales), so the
documentation cannot silently rot.
"""

import pytest

from repro.core import build_sessions, classify_flows
from repro.core.report import render_study_report
from repro.core.sessions import flows_per_session_histogram
from repro.sim import run_scenario
from repro.trace import read_flow_log, write_flow_log


@pytest.fixture(scope="module")
def tour_result():
    return run_scenario("EU1-ADSL", scale=0.005, seed=7)


class TestTourSection1Simulate:
    def test_dataset_surface(self, tour_result):
        dataset = tour_result.dataset
        assert len(dataset) > 0
        assert dataset.total_bytes > 0
        assert len(dataset.server_ips) >= 3

    def test_flow_log_roundtrip(self, tour_result, tmp_path):
        path = tmp_path / "flows.tsv"
        write_flow_log(tour_result.dataset.records, path)
        records = read_flow_log(path)
        assert records == tour_result.dataset.records


class TestTourSection2Sessions:
    def test_flows_and_sessions(self, tour_result):
        records = tour_result.dataset.records
        classes = classify_flows(records)
        assert classes.total == len(records)
        sessions = build_sessions(records, gap_s=1.0)
        histogram = flows_per_session_histogram(sessions)
        assert 0.0 < histogram["1"] <= 1.0


class TestTourSections3Through8:
    def test_pipeline_surface(self, pipeline):
        assert pipeline.summaries["EU2"].flows > 0
        assert "google" in pipeline.as_breakdowns["EU2"].byte_fractions
        assert pipeline.server_map.clusters
        report = pipeline.preferred_reports["EU1-ADSL"]
        assert 0.0 < report.byte_share(report.preferred_id) <= 1.0
        assert pipeline.site_of_ip(pipeline.dataset("EU2").server_ips[0]) is not None

    def test_geoloc_surface(self, pipeline):
        from repro.geo import generate_landmarks

        landmarks = generate_landmarks(seed=42)
        assert len(landmarks) == 215
        sub = landmarks.subsample(40, seed=1)
        assert len(sub) == 40

    def test_whatif_surface(self):
        from repro.whatif import compare_variants, render_comparison
        from repro.whatif.variants import variant_by_name

        cmp = compare_variants(
            "EU1-FTTH", [variant_by_name("no-spill")], scale=0.004, seed=7
        )
        assert "no-spill" in render_comparison(cmp)
        assert cmp.delta("no-spill", "preferred_share") is not None

    def test_reporting_surface(self, pipeline, tmp_path):
        from repro.reporting.gnuplot import export_figure_cdfs

        text = render_study_report(pipeline)
        assert "Preferred data centers" in text
        script = export_figure_cdfs(
            {"EU2": pipeline.rtt_cdf("EU2")}, tmp_path, "fig02_rtt",
            x_label="RTT [ms]",
        )
        assert script.exists()
