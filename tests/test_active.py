"""Tests for the PlanetLab active experiments."""

import pytest

from repro.active.planetlab import build_planetlab_nodes
from repro.active.testvideo import TestVideoExperiment
from repro.geo.regions import Continent
from repro.sim.scenarios import PAPER_SCENARIOS, build_world


class TestNodes:
    def test_count_and_uniqueness(self):
        nodes = build_planetlab_nodes(45)
        assert len(nodes) == 45
        assert len({n.name for n in nodes}) == 45
        assert len({n.city.name for n in nodes}) == 45
        assert len({n.ip for n in nodes}) == 45

    def test_continental_diversity(self):
        nodes = build_planetlab_nodes(45)
        continents = {n.city.continent for n in nodes}
        assert Continent.NORTH_AMERICA in continents
        assert Continent.EUROPE in continents
        assert Continent.ASIA in continents

    def test_sites_distinct_groups(self):
        nodes = build_planetlab_nodes(10)
        groups = {n.site.routing_group for n in nodes}
        assert len(groups) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            build_planetlab_nodes(0)
        with pytest.raises(ValueError):
            build_planetlab_nodes(10_000)


@pytest.fixture(scope="module")
def experiment_world():
    return build_world(PAPER_SCENARIOS["EU1-FTTH"], scale=0.002, seed=13)


@pytest.fixture(scope="module")
def report(experiment_world):
    experiment = TestVideoExperiment(experiment_world, num_nodes=40, seed=5)
    return experiment.run(num_samples=6)


class TestExperiment:
    def test_nodes_have_diverse_preferred_dcs(self, experiment_world):
        experiment = TestVideoExperiment(experiment_world, num_nodes=40, seed=5)
        preferred = {experiment.preferred_dc_of(n) for n in experiment.nodes}
        assert len(preferred) >= 15

    def test_series_shapes(self, report):
        assert len(report.series) == 40
        for series in report.series:
            assert len(series.rtts_ms) == 6
            assert len(series.times_s) == 6
            assert all(r > 0 for r in series.rtts_ms)

    def test_first_fetch_slower_for_many_nodes(self, report):
        cdf = report.ratio_cdf()
        improved = 1.0 - cdf.fraction_below(1.2)
        # Paper: "for over 40% of the PlanetLab nodes, the ratio was > 1".
        assert improved > 0.4

    def test_large_improvements_exist(self, report):
        cdf = report.ratio_cdf()
        # Paper: "in 20% of the cases the ratio was greater than 10".
        assert 1.0 - cdf.fraction_below(10.0) > 0.1

    def test_settled_rtt_stable(self, report):
        best = report.most_improved()
        assert best.rtts_ms[0] > 3.0 * best.settled_rtt_ms

    def test_later_samples_near_second(self, report):
        # After the pull-through the serving data center settles; the odd
        # late spike (overflow of the shared shard server) is allowed —
        # the paper's Figure 17 shows those too — but the *typical* tail
        # sample stays near the best one.
        for series in report.series:
            tail = sorted(series.rtts_ms[1:])
            median = tail[len(tail) // 2]
            assert median < 4.0 * tail[0] + 5.0

    def test_origin_recorded(self, report):
        assert report.origin_dcs
        assert report.video_id

    def test_fraction_improved_helper(self, report):
        assert 0.0 <= report.fraction_improved() <= 1.0

    def test_sample_validation(self, experiment_world):
        experiment = TestVideoExperiment(experiment_world, num_nodes=5, seed=6)
        with pytest.raises(ValueError):
            experiment.run(num_samples=1)

    def test_ratio_requires_two_samples(self, report):
        from repro.active.testvideo import NodeRttSeries

        series = NodeRttSeries(node=report.series[0].node, times_s=[0.0], rtts_ms=[5.0])
        with pytest.raises(ValueError):
            series.first_to_second_ratio
