"""Tests for the CBG implementation — calibration, constraints, regions."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.cities import default_atlas
from repro.geo.coords import haversine_km
from repro.geo.landmarks import generate_landmarks
from repro.geo.regions import Continent
from repro.geoloc.cbg import (
    Bestline,
    CbgGeolocator,
    MIN_RADIUS_KM,
    MIN_SLOPE_MS_PER_KM,
    fit_bestline,
)
from repro.geoloc.probing import RttProber
from repro.net.latency import AccessTechnology, LatencyModel, Site


class TestBestlineFit:
    def test_line_below_all_points(self):
        distances = [100.0, 500.0, 1000.0, 2000.0, 4000.0]
        rtts = [4.0, 12.0, 18.0, 35.0, 65.0]
        line = fit_bestline(distances, rtts)
        for d, r in zip(distances, rtts):
            assert line.slope_ms_per_km * d + line.intercept_ms <= r + 1e-6

    def test_slope_at_least_fibre_bound(self):
        distances = [100.0, 1000.0, 3000.0]
        rtts = [100.0, 100.5, 101.0]  # absurdly flat cloud
        line = fit_bestline(distances, rtts)
        assert line.slope_ms_per_km >= MIN_SLOPE_MS_PER_KM - 1e-12

    def test_intercept_non_negative(self):
        line = fit_bestline([10.0, 5000.0], [0.2, 30.0])
        assert line.intercept_ms >= 0.0

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_bestline([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_bestline([1.0, 2.0], [1.0])

    def test_distance_estimate_clamped(self):
        line = Bestline(slope_ms_per_km=0.01, intercept_ms=5.0)
        assert line.distance_km(1.0) == MIN_RADIUS_KM  # below intercept
        assert line.distance_km(25.0) == pytest.approx(2000.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=10.0, max_value=8000.0),
                st.floats(min_value=1.2, max_value=3.0),
            ),
            min_size=3,
            max_size=30,
        )
    )
    @settings(max_examples=60)
    def test_property_below_cloud(self, cloud):
        distances = [d for d, _ in cloud]
        # RTT = inflation * ideal + noise-free fixed part: always >= bound.
        rtts = [LatencyModel.ideal_rtt_ms(d) * infl + 1.0 for d, infl in cloud]
        line = fit_bestline(distances, rtts)
        for d, r in zip(distances, rtts):
            assert line.slope_ms_per_km * d + line.intercept_ms <= r + 1e-6


@pytest.fixture(scope="module")
def geolocator():
    landmarks = generate_landmarks(seed=42).subsample(70, seed=1)
    latency = LatencyModel(seed=123)
    prober = RttProber(latency, probes=5, seed=99)
    return CbgGeolocator(landmarks, prober), latency


def dc_site(city_name):
    city = default_atlas().get(city_name)
    return Site(
        key=f"srv:{city_name}",
        point=city.point,
        access=AccessTechnology.DATACENTER,
        group=f"dc:{city_name}",
    )


class TestGeolocation:
    def test_accuracy_in_dense_regions(self, geolocator):
        cbg, _ = geolocator
        for city_name in ("Amsterdam", "Chicago", "Milan", "Dallas"):
            target = dc_site(city_name)
            result = cbg.geolocate_target(target)
            err = haversine_km(result.estimate, target.point)
            assert err < 250.0, f"{city_name}: {err:.0f} km"

    def test_feasible_regions_usually(self, geolocator):
        cbg, _ = geolocator
        feasible = 0
        cities = ("Amsterdam", "Chicago", "Milan", "Dallas", "Tokyo", "Madrid")
        for city_name in cities:
            if cbg.geolocate_target(dc_site(city_name)).feasible:
                feasible += 1
        assert feasible >= len(cities) - 1

    def test_confidence_radius_positive(self, geolocator):
        cbg, _ = geolocator
        result = cbg.geolocate_target(dc_site("Paris"))
        assert result.confidence_radius_km > 0.0

    def test_needs_three_constraints(self, geolocator):
        cbg, _ = geolocator
        rtts = {cbg.landmarks[0].name: 10.0, cbg.landmarks[1].name: 10.0}
        with pytest.raises(ValueError):
            cbg.geolocate(rtts)

    def test_constraints_used_counted(self, geolocator):
        cbg, _ = geolocator
        result = cbg.geolocate_target(dc_site("London"))
        assert result.constraints_used == len(cbg.landmarks)

    def test_bestlines_calibrated_per_landmark(self, geolocator):
        cbg, _ = geolocator
        for lm in cbg.landmarks[:5]:
            line = cbg.bestline(lm.name)
            assert line.slope_ms_per_km >= MIN_SLOPE_MS_PER_KM - 1e-12
            assert line.intercept_ms >= 0.0

    def test_deterministic(self):
        landmarks = generate_landmarks(seed=42).subsample(30, seed=1)
        latency = LatencyModel(seed=123)

        def run():
            prober = RttProber(latency, probes=4, seed=99)
            cbg = CbgGeolocator(landmarks, prober)
            return cbg.geolocate_target(dc_site("Milan"))

        a, b = run(), run()
        assert a.estimate == b.estimate
        assert a.confidence_radius_km == b.confidence_radius_km

    def test_minimum_landmark_count(self):
        landmarks = generate_landmarks(
            mix={Continent.EUROPE: 3}, seed=1
        )
        latency = LatencyModel(seed=1)
        with pytest.raises(ValueError):
            CbgGeolocator(landmarks, RttProber(latency, probes=2, seed=0))

    def test_region_contains_truth_when_feasible(self, geolocator):
        cbg, _ = geolocator
        target = dc_site("Frankfurt")
        result = cbg.geolocate_target(target)
        if result.feasible:
            err = haversine_km(result.estimate, target.point)
            # The estimate is the region centroid; truth lies within the
            # region, so the error is bounded by a few region radii.
            assert err <= max(4.0 * result.confidence_radius_km, 300.0)
