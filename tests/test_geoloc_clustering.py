"""Tests for server-to-data-center clustering."""

import pytest

from repro.geo.cities import default_atlas
from repro.geo.coords import GeoPoint
from repro.geoloc.cbg import CbgResult
from repro.geoloc.clustering import cluster_servers
from repro.net.ip import parse_ip, slash24_of


def fake_result(city_name, jitter=0.0):
    city = default_atlas().get(city_name)
    return CbgResult(
        estimate=GeoPoint(city.point.lat + jitter, city.point.lon),
        confidence_radius_km=40.0,
        feasible=True,
        constraints_used=60,
    )


class TestClustering:
    def test_same_slash24_same_cluster(self):
        ips = [parse_ip("173.194.5.1"), parse_ip("173.194.5.200"),
               parse_ip("173.194.9.1")]
        calls = []

        def geolocate(ip):
            calls.append(ip)
            return fake_result("Amsterdam" if slash24_of(ip) == slash24_of(ips[0]) else "Milan")

        result = cluster_servers(ips, geolocate)
        # One geolocation call per /24, not per IP.
        assert len(calls) == 2
        assert result.cluster_of(ips[0]) is result.cluster_of(ips[1])
        assert result.cluster_of(ips[0]) is not result.cluster_of(ips[2])

    def test_same_city_slash24s_merge(self):
        ips = [parse_ip("173.194.5.1"), parse_ip("173.194.9.1")]

        def geolocate(ip):
            return fake_result("Amsterdam", jitter=0.01 if ip == ips[1] else 0.0)

        result = cluster_servers(ips, geolocate)
        assert len(result.clusters) == 1
        cluster = result.clusters[0]
        assert cluster.city.name == "Amsterdam"
        assert sorted(cluster.server_ips) == sorted(ips)
        assert len(cluster) == 2

    def test_unknown_ip_raises(self):
        result = cluster_servers([parse_ip("1.2.3.4")], lambda ip: fake_result("Milan"))
        with pytest.raises(KeyError):
            result.cluster_of(parse_ip("9.9.9.9"))

    def test_continent_counts(self):
        ips = [parse_ip("173.194.5.1"), parse_ip("10.0.0.1"), parse_ip("11.0.0.1")]

        def geolocate(ip):
            if ip == ips[0]:
                return fake_result("Chicago")
            if ip == ips[1]:
                return fake_result("Milan")
            return fake_result("Tokyo")

        result = cluster_servers(ips, geolocate)
        counts = result.continent_counts(ips)
        assert counts == {"N. America": 1, "Europe": 1, "Others": 1}
        # IPs not in the map are skipped.
        counts2 = result.continent_counts(ips + [parse_ip("99.99.99.99")])
        assert counts2 == counts

    def test_results_by_slash24_recorded(self):
        ips = [parse_ip("173.194.5.1")]
        result = cluster_servers(ips, lambda ip: fake_result("Milan"))
        assert slash24_of(ips[0]) in result.results_by_slash24

    def test_cluster_against_real_world(self, pipeline, study_results):
        """Inference check: the partition matches the simulator's ground truth.

        Cluster labels are cosmetic (a 150 km CBG error can relabel
        Chicago as a neighbouring town), but the *grouping* must recover
        the true data-center partition: every inferred cluster should be
        dominated by one true data center (purity), and every true data
        center's servers should land in one cluster (completeness).
        """
        server_map = pipeline.server_map
        worlds = [r.world for r in study_results.values()]

        def true_dc(ip):
            for world in worlds:
                dc = world.system.directory.dc_of_server(ip)
                if dc is not None:
                    return dc.dc_id
            return None

        # Purity: each cluster dominated by one true data center.
        pure = 0
        total = 0
        dc_to_clusters = {}
        for cluster in server_map.clusters:
            counts = {}
            for ip in cluster.server_ips:
                dc_id = true_dc(ip)
                assert dc_id is not None
                counts[dc_id] = counts.get(dc_id, 0) + 1
                dc_to_clusters.setdefault(dc_id, set()).add(cluster.cluster_id)
            majority = max(counts.values())
            pure += majority
            total += len(cluster.server_ips)
        assert total > 0
        assert pure / total > 0.95

        # Completeness: a true data center's servers land in one cluster.
        split = [dc for dc, cl in dc_to_clusters.items() if len(cl) > 1]
        assert len(split) <= max(1, len(dc_to_clusters) // 10)
