"""Tests for the bootstrap confidence module."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.confidence import ConfidenceInterval, bootstrap_interval, fraction_interval


class TestBootstrap:
    def test_point_matches_full_sample(self):
        items = [1.0, 2.0, 3.0, 4.0]
        ci = bootstrap_interval(items, lambda s: sum(s) / len(s), seed=1)
        assert ci.point == pytest.approx(2.5)

    def test_interval_brackets_point(self):
        items = list(range(100))
        ci = bootstrap_interval(items, lambda s: sum(s) / len(s), seed=2)
        assert ci.low <= ci.point <= ci.high
        assert ci.width > 0

    def test_narrower_with_more_data(self):
        small = fraction_interval([True, False] * 20, seed=3)
        large = fraction_interval([True, False] * 500, seed=3)
        assert large.width < small.width

    def test_deterministic(self):
        flags = [True] * 30 + [False] * 70
        a = fraction_interval(flags, seed=4)
        b = fraction_interval(flags, seed=4)
        assert (a.low, a.high) == (b.low, b.high)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_interval([], lambda s: 0.0)
        with pytest.raises(ValueError):
            bootstrap_interval([1], lambda s: 0.0, level=1.0)
        with pytest.raises(ValueError):
            bootstrap_interval([1], lambda s: 0.0, resamples=5)

    def test_contains_and_str(self):
        ci = ConfidenceInterval(point=0.5, low=0.4, high=0.6, level=0.95, resamples=100)
        assert ci.contains(0.5)
        assert not ci.contains(0.7)
        assert "[0.4000, 0.6000]" in str(ci)

    @given(st.integers(min_value=5, max_value=60), st.integers(min_value=0, max_value=99))
    @settings(max_examples=25, deadline=None)
    def test_fraction_bounds_property(self, n_true, seed):
        flags = [True] * n_true + [False] * (80 - min(n_true, 79))
        ci = fraction_interval(flags, resamples=100, seed=seed)
        assert 0.0 <= ci.low <= ci.point <= ci.high <= 1.0

    def test_on_simulated_nonpreferred_fraction(self, pipeline):
        """Error bars on the Figure 9 headline number."""
        from repro.core.nonpreferred import video_flow_preference

        name = "EU1-ADSL"
        split = video_flow_preference(
            pipeline.focus_records[name],
            pipeline.preferred_reports[name],
            pipeline.server_map,
        )
        flags = [False] * len(split[True]) + [True] * len(split[False])
        ci = fraction_interval(flags, resamples=200, seed=5)
        assert ci.contains(pipeline.nonpreferred_fraction(name))
        assert ci.width < 0.05  # tight at this sample size
