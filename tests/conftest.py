"""Shared fixtures.

The expensive objects — a simulated five-dataset week and the analysis
pipeline over it — are session-scoped: every integration test reads the
same simulated traces, exactly like the paper's authors analysing one set
of collected traces many times.
"""

from __future__ import annotations

import os

import pytest

# The suite must never read or populate the user's real artifact cache
# (~/.cache/repro): stale artifacts would mask regressions, and test runs
# would pollute it.  Cache tests opt back in with monkeypatched env vars.
os.environ["REPRO_CACHE"] = "off"

from repro.core.pipeline import StudyPipeline
from repro.sim.driver import run_all
from repro.sim.scenarios import PAPER_SCENARIOS, build_world

#: Volume scale for the shared week (≈2 % of paper traffic: all shapes
#: survive, and the whole suite simulates in a few seconds).
TEST_SCALE = 0.02
TEST_SEED = 7


@pytest.fixture(scope="session")
def study_results():
    """The five simulated datasets (shared across the whole session)."""
    return run_all(scale=TEST_SCALE, seed=TEST_SEED)


@pytest.fixture(scope="session")
def pipeline(study_results):
    """The analysis pipeline over the shared datasets.

    Uses a 60-landmark CBG budget: calibration stays fast and accuracy is
    still tens of kilometres.
    """
    return StudyPipeline(study_results, landmark_count=60, seed=11)


@pytest.fixture(scope="session")
def eu1_adsl(study_results):
    """The EU1-ADSL simulation result (hot-spot analyses focus on it)."""
    return study_results["EU1-ADSL"]


@pytest.fixture(scope="session")
def us_campus(study_results):
    """The US-Campus simulation result."""
    return study_results["US-Campus"]


@pytest.fixture(scope="session")
def eu2(study_results):
    """The EU2 simulation result (DNS load-balancing analyses)."""
    return study_results["EU2"]


@pytest.fixture(scope="session")
def tiny_world():
    """A very small standalone world for unit tests needing CDN machinery."""
    return build_world(PAPER_SCENARIOS["EU1-FTTH"], scale=0.004, seed=3)
