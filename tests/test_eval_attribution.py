"""Tests for the ground-truth attribution scorer and the ``eval`` CLI.

The headline regression: on the baseline ``preferred`` world the blind
pipeline's session verdicts must agree with the simulator's ground truth
≥ 99 % of the time, and the inferred preferred data center must be the
one the policy actually intended — if either slips, the paper's
methodology (or our reproduction of it) has quietly broken.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.eval.attribution import (
    evaluate_policy,
    match_session_truths,
    render_attribution,
    score_attribution,
)
from repro.sim.engine import TRUTH_LABELS


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture(scope="module")
def baseline_scores(pipeline, study_results):
    return score_attribution(pipeline, study_results, "preferred")


class TestBaselineAttribution:
    def test_scores_every_dataset(self, baseline_scores, study_results):
        assert set(baseline_scores) == set(study_results)

    def test_accuracy_at_least_99_percent(self, baseline_scores):
        """The paper's methodology must read its own baseline correctly."""
        for name, score in baseline_scores.items():
            assert score.accuracy >= 0.99, (
                f"{name}: blind verdicts agree with ground truth only "
                f"{score.accuracy:.4f} of the time"
            )

    def test_preferred_dc_inference_matches_ground_truth(
        self, baseline_scores
    ):
        for name, score in baseline_scores.items():
            assert score.preferred_match, (
                f"{name}: inferred {score.inferred_preferred_dc}, "
                f"policy intended {score.true_preferred_dc}"
            )

    def test_matrix_totals_the_matched_sessions(self, baseline_scores):
        for score in baseline_scores.values():
            assert sum(score.matrix.values()) == score.matched_sessions
            for truth, inferred in score.matrix:
                assert truth in TRUTH_LABELS and inferred in TRUTH_LABELS

    def test_coverage_is_near_total(self, baseline_scores):
        for name, score in baseline_scores.items():
            assert score.coverage >= 0.95, (
                f"{name}: only {score.coverage:.3f} of sessions matched"
            )

    def test_as_dict_is_json_ready(self, baseline_scores):
        for score in baseline_scores.values():
            document = json.loads(json.dumps(score.as_dict()))
            assert document["accuracy"] == pytest.approx(score.accuracy)
            assert document["preferred_match"] is score.preferred_match


class TestTruthMatching:
    def test_partitions_the_truth_log(self, pipeline, study_results):
        """Every truth record is assigned to ≤1 session or counted orphan."""
        for name, result in study_results.items():
            sessions = pipeline.sessions[name]
            assignments, orphans = match_session_truths(
                sessions, result.truth
            )
            assigned = [i for indices in assignments for i in indices]
            assert len(assigned) == len(set(assigned))
            assert len(assigned) + orphans == len(result.truth)

    def test_assigned_requests_share_the_session_key(
        self, pipeline, study_results
    ):
        for name, result in study_results.items():
            sessions = pipeline.sessions[name]
            assignments, _ = match_session_truths(sessions, result.truth)
            for session, indices in zip(sessions, assignments):
                for index in indices:
                    assert result.truth.client_ips[index] == session.client_ip
                    assert result.truth.video_ids[index] == session.video_id


class TestEvaluatePolicy:
    def test_unknown_kind_fails_before_simulating(self):
        from repro.cdn.selection import UnknownPolicyError

        with pytest.raises(UnknownPolicyError) as excinfo:
            evaluate_policy("round-robin")
        assert "registered policies" in str(excinfo.value)

    def test_small_evaluation_end_to_end(self):
        evaluation = evaluate_policy(
            "proportional", scale=0.004, seed=5, landmark_count=40,
            names=("EU1-FTTH",),
        )
        assert set(evaluation.scores) == {"EU1-FTTH"}
        assert set(evaluation.digests) == {"EU1-FTTH"}
        assert 0.0 <= evaluation.mean_accuracy <= 1.0
        text = render_attribution(evaluation)
        assert "ATTRIBUTION SCORECARD" in text
        assert "EU1-FTTH" in text


class TestEvalCli:
    def test_eval_renders_a_scorecard(self):
        code, text = run_cli(
            "eval", "--policy", "preferred", "--scale", "0.004",
            "--seed", "5", "--landmarks", "40",
        )
        assert code == 0
        assert "ATTRIBUTION SCORECARD" in text
        assert "mean accuracy" in text

    def test_eval_json_and_digests(self):
        code, text = run_cli(
            "eval", "--policy", "preferred", "--scale", "0.004",
            "--seed", "5", "--landmarks", "40", "--json", "--digests",
        )
        assert code == 0
        body, _, digest_block = text.partition("digest ")
        document = json.loads(body)
        assert "preferred" in document
        assert digest_block  # one line per dataset follows the JSON

    def test_unknown_policy_exits_2(self, capsys):
        code, _ = run_cli("eval", "--policy", "round-robin")
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown policy 'round-robin'" in err
        assert "registered policies" in err
        assert "gwtw" in err and "isp-te" in err and "partition" in err

    def test_empty_policy_list_exits_2(self, capsys):
        code, _ = run_cli("eval", "--policy", " , ")
        assert code == 2
        assert "names no policies" in capsys.readouterr().err


class TestStudyPolicyFlag:
    @pytest.mark.parametrize(
        "flag", ["--stream", "--sharded", "--shared"]
    )
    def test_policy_needs_the_batch_path(self, flag, capsys):
        code, _ = run_cli("study", "--policy", "gwtw", flag)
        assert code == 2
        err = capsys.readouterr().err
        assert "--policy gwtw" in err
        assert "batch" in err

    def test_unknown_policy_rejected_by_the_parser(self):
        with pytest.raises(SystemExit):
            from repro.cli import build_parser

            build_parser().parse_args(["study", "--policy", "round-robin"])


class TestSpecPolicyValidation:
    def test_unknown_spec_par_policy_fails_fast(self):
        from repro.spec.info import SpecError
        from repro.spec.model import coerce_par

        with pytest.raises(SpecError) as excinfo:
            coerce_par("policy", "round-robin")
        message = str(excinfo.value)
        assert "registered policies" in message
        assert "gwtw" in message

    def test_registered_kinds_are_valid_pars(self):
        from repro.spec.model import coerce_par, policy_kinds

        for kind in policy_kinds():
            assert coerce_par("policy", kind) == kind

    def test_grid_axis_unknown_policy_exits_2(self, capsys):
        code, _ = run_cli(
            "grid", "run", "--axis", "policy=preferred,round-robin",
            "--scale", "0.004",
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown policy 'round-robin'" in err
        assert "registered policies" in err
