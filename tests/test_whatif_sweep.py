"""Tests for what-if parameter sweeps."""

import pytest

from repro.whatif.sweep import sweep_parameter


class TestSweepMechanics:
    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            sweep_parameter("Mars", "featured_share", [0.1])

    def test_unknown_field(self):
        with pytest.raises(ValueError):
            sweep_parameter("EU1-FTTH", "warp_factor", [0.1])

    def test_empty_grid(self):
        with pytest.raises(ValueError):
            sweep_parameter("EU1-FTTH", "featured_share", [])

    def test_series_alignment(self):
        sweep = sweep_parameter(
            "EU1-FTTH", "spill_probability", [0.0, 0.08], scale=0.004, seed=7
        )
        series = sweep.series("preferred_share")
        assert series.xs == [0.0, 0.08]
        assert len(series.ys) == 2

    def test_unknown_metric_raises(self):
        sweep = sweep_parameter(
            "EU1-FTTH", "spill_probability", [0.0], scale=0.004, seed=7
        )
        with pytest.raises(AttributeError):
            sweep.series("nonexistent_metric")


class TestDoseResponses:
    def test_spill_lowers_preferred_share(self):
        sweep = sweep_parameter(
            "EU1-FTTH", "spill_probability", [0.0, 0.05, 0.15], scale=0.005, seed=7
        )
        assert sweep.monotone_direction("preferred_share") == -1

    def test_regional_presence_lowers_misses(self):
        sweep = sweep_parameter(
            "EU1-FTTH", "regional_presence_prob", [0.1, 0.5, 0.9],
            scale=0.005, seed=7,
        )
        assert sweep.monotone_direction("miss_rate") == -1

    def test_eu2_cap_raises_local_share(self):
        sweep = sweep_parameter(
            "EU2", "internal_dc_cap_of_mean", [0.2, 0.55, 1.2],
            scale=0.006, seed=7,
        )
        # More DNS budget for the in-ISP data center → more served locally.
        assert sweep.monotone_direction("preferred_share") == 1
        low = sweep.metrics[0].preferred_share
        high = sweep.metrics[-1].preferred_share
        assert high > low + 0.2
