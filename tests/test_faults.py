"""Tests for the deterministic fault-injection layer (:mod:`repro.faults`).

Covers the plan grammar and its decision functions, the shared retry
policy, the injection sites (executor, campaigns, CBG, artifact store,
flow-log ingestion), degradation accounting, and the cache-key namespace
split between clean and faulted runs.
"""

import pickle

import pytest

from repro.artifacts.keys import stage_key
from repro.artifacts.store import ArtifactStore
from repro.exec.executor import ExecutionError, ParallelExecutor
from repro.faults import report as degradation
from repro.faults.plan import (
    ENV_FAULTS,
    RATE_FIELDS,
    FaultPlan,
    active_plan,
    clear_current_plan,
    current_plan,
    set_current_plan,
)
from repro.faults.report import DegradationReport, collect
from repro.faults.retry import (
    DEFAULT_RETRY_ON,
    ProbeTimeout,
    RetryPolicy,
    TransientFault,
    WorkerCrash,
    default_retry_policy,
)
from repro.geo.coords import GeoPoint
from repro.geoloc.probing import (
    CampaignJob,
    CampaignOutcome,
    run_campaign_job,
    run_campaign_job_faulted,
)
from repro.net.latency import AccessTechnology, LatencyModel, Site
from repro.reporting.timing import render_degradation_table, timing_summary
from repro.trace.logio import dumps, loads
from repro.trace.records import FlowRecord


@pytest.fixture
def install_plan():
    """Install a FaultPlan for one test; always restores a clean slate."""

    def _install(**kwargs):
        plan = FaultPlan(**kwargs)
        set_current_plan(plan)
        return plan

    degradation.reset()
    yield _install
    clear_current_plan()
    degradation.reset()


# --------------------------------------------------------------- plan grammar


class TestFaultPlanParsing:
    def test_default_plan_is_inert(self):
        plan = FaultPlan()
        assert not plan.active
        assert active_plan() is None or True  # ambient state untouched here

    def test_any_nonzero_rate_makes_plan_active(self):
        for name in RATE_FIELDS:
            assert FaultPlan(**{name: 0.5}).active

    @pytest.mark.parametrize("field", RATE_FIELDS)
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rates_outside_unit_interval_rejected(self, field, bad):
        with pytest.raises(ValueError, match=field):
            FaultPlan(**{field: bad})

    def test_negative_failure_ceiling_rejected(self):
        with pytest.raises(ValueError, match="max_failures_per_task"):
            FaultPlan(max_failures_per_task=-1)

    def test_json_round_trip(self):
        plan = FaultPlan(seed=42, probe_loss=0.25, task_crash=0.1,
                         max_failures_per_task=3)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault plan fields"):
            FaultPlan.from_json('{"seed": 1, "probe_losss": 0.5}')

    def test_from_json_rejects_malformed_text(self):
        with pytest.raises(ValueError, match="malformed"):
            FaultPlan.from_json("{not json")

    def test_from_json_rejects_non_objects(self):
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json("[1, 2, 3]")

    def test_from_spec_inline_json(self):
        plan = FaultPlan.from_spec('{"seed": 9, "line_garble": 0.5}')
        assert plan.seed == 9 and plan.line_garble == 0.5

    def test_from_spec_file_path(self, tmp_path):
        path = tmp_path / "chaos.json"
        path.write_text('{"seed": 3, "probe_timeout": 0.2}')
        plan = FaultPlan.from_spec(str(path))
        assert plan.seed == 3 and plan.probe_timeout == 0.2

    def test_from_spec_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            FaultPlan.from_spec("   ")

    def test_from_spec_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            FaultPlan.from_spec(str(tmp_path / "absent.json"))


class TestFaultPlanDecisions:
    def test_unit_draws_lie_in_unit_interval(self):
        plan = FaultPlan(seed=7)
        draws = [plan.unit("site", str(i)) for i in range(200)]
        assert all(0.0 <= u < 1.0 for u in draws)

    def test_decisions_are_pure_functions_of_seed_and_labels(self):
        a = FaultPlan(seed=11, probe_loss=0.5)
        b = FaultPlan(seed=11, probe_loss=0.5)
        labels = [("campaign", str(i)) for i in range(100)]
        assert [a.decide(a.probe_loss, *lb) for lb in labels] == \
            [b.decide(b.probe_loss, *lb) for lb in labels]

    def test_different_seeds_make_different_decisions(self):
        a = FaultPlan(seed=1, probe_loss=0.5)
        b = FaultPlan(seed=2, probe_loss=0.5)
        labels = [("x", str(i)) for i in range(100)]
        assert [a.decide(0.5, *lb) for lb in labels] != \
            [b.decide(0.5, *lb) for lb in labels]

    def test_zero_rate_never_fires(self):
        plan = FaultPlan(seed=5)
        assert not any(plan.decide(0.0, str(i)) for i in range(100))

    def test_unit_rate_always_fires(self):
        plan = FaultPlan(seed=5, task_crash=1.0)
        assert all(plan.decide(1.0, str(i)) for i in range(100))

    def test_empirical_rate_tracks_nominal_rate(self):
        plan = FaultPlan(seed=13, probe_loss=0.3)
        fired = sum(plan.decide(0.3, "probe", str(i)) for i in range(2000))
        assert 0.25 < fired / 2000 < 0.35

    def test_attempt_ceiling_guarantees_convergence(self):
        plan = FaultPlan(seed=1, task_transient=1.0, max_failures_per_task=2)
        assert plan.attempt_fails(1.0, 1, "t")
        assert plan.attempt_fails(1.0, 2, "t")
        assert not plan.attempt_fails(1.0, 3, "t")
        assert not plan.attempt_fails(1.0, 99, "t")

    def test_attempts_draw_independently(self):
        plan = FaultPlan(seed=21, probe_timeout=0.5, max_failures_per_task=50)
        outcomes = {plan.attempt_fails(0.5, a, "probe") for a in range(1, 51)}
        assert outcomes == {True, False}


class TestCurrentPlan:
    def test_no_plan_without_env_or_override(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULTS, raising=False)
        clear_current_plan()
        assert current_plan() is None
        assert active_plan() is None

    def test_env_plan_parsed_and_reparsed_on_change(self, monkeypatch):
        clear_current_plan()
        monkeypatch.setenv(ENV_FAULTS, '{"seed": 4, "probe_loss": 0.1}')
        assert current_plan().seed == 4
        monkeypatch.setenv(ENV_FAULTS, '{"seed": 5, "probe_loss": 0.1}')
        assert current_plan().seed == 5

    def test_env_plan_from_file(self, monkeypatch, tmp_path):
        clear_current_plan()
        path = tmp_path / "plan.json"
        path.write_text('{"seed": 8, "line_garble": 0.3}')
        monkeypatch.setenv(ENV_FAULTS, str(path))
        assert current_plan().line_garble == 0.3

    def test_malformed_env_plan_fails_loudly(self, monkeypatch):
        clear_current_plan()
        monkeypatch.setenv(ENV_FAULTS, "{broken")
        with pytest.raises(ValueError):
            current_plan()

    def test_explicit_plan_wins_over_env(self, monkeypatch, install_plan):
        monkeypatch.setenv(ENV_FAULTS, '{"seed": 1, "probe_loss": 0.9}')
        plan = install_plan(seed=77, probe_loss=0.2)
        assert current_plan() is plan
        set_current_plan(None)
        assert current_plan() is None  # explicit "no plan" beats the env
        clear_current_plan()
        assert current_plan().seed == 1

    def test_inert_plan_is_not_active(self, install_plan):
        install_plan(seed=123)  # all rates zero
        assert current_plan() is not None
        assert active_plan() is None


# --------------------------------------------------------------- retry policy


class TestRetryPolicy:
    @pytest.mark.parametrize("kwargs,match", [
        ({"max_attempts": 0}, "max_attempts"),
        ({"base_delay_s": -0.1}, "delays"),
        ({"max_delay_s": -1.0}, "delays"),
        ({"multiplier": 0.5}, "multiplier"),
        ({"jitter": 1.0}, "jitter"),
        ({"max_deadline_s": 0.0}, "max_deadline_s"),
    ])
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RetryPolicy(**kwargs)

    def test_retryable_by_name_and_instance(self):
        policy = RetryPolicy()
        assert policy.retryable("TransientFault")
        assert policy.retryable("TimeoutError")
        assert not policy.retryable("ValueError")
        assert policy.retryable(TransientFault("x"))
        assert not policy.retryable(ValueError("x"))

    def test_retryable_walks_the_mro_for_subclasses(self):
        class BespokeGlitch(TransientFault):
            pass

        policy = RetryPolicy()
        assert policy.retryable(BespokeGlitch("y"))
        # By name the subclass is unknown — only instances carry their MRO.
        assert not policy.retryable("BespokeGlitch")

    def test_default_taxonomy_members_are_retryable(self):
        policy = RetryPolicy()
        for name in DEFAULT_RETRY_ON:
            assert policy.retryable(name)
        assert policy.retryable(WorkerCrash("w"))
        assert policy.retryable(ProbeTimeout("p"))

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0,
                             max_delay_s=0.5, jitter=0.0)
        assert policy.delay_s(1) == pytest.approx(0.1)
        assert policy.delay_s(2) == pytest.approx(0.2)
        assert policy.delay_s(3) == pytest.approx(0.4)
        assert policy.delay_s(4) == pytest.approx(0.5)  # capped
        assert policy.delay_s(9) == pytest.approx(0.5)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0, max_delay_s=1.0,
                             jitter=0.2, seed=3)
        assert policy.delay_s(1, "site") == policy.delay_s(1, "site")
        assert policy.delay_s(1, "site") != policy.delay_s(1, "other-site")
        for attempt in range(1, 20):
            assert 0.8 <= policy.delay_s(attempt, "site") < 1.2

    def test_delay_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay_s(0)

    def test_run_returns_first_success_without_sleeping(self):
        sleeps = []
        value = RetryPolicy().run(lambda attempt: attempt * 10,
                                  sleep=sleeps.append)
        assert value == 10
        assert sleeps == []

    def test_run_retries_transient_then_succeeds(self):
        sleeps = []
        retried = []

        def flaky(attempt):
            if attempt < 3:
                raise TransientFault(f"attempt {attempt}")
            return "ok"

        policy = RetryPolicy(max_attempts=4, base_delay_s=0.0, jitter=0.0)
        value = policy.run(flaky, label="flaky", sleep=sleeps.append,
                           on_retry=lambda a, e: retried.append(a))
        assert value == "ok"
        assert retried == [1, 2]

    def test_run_sleeps_the_deterministic_schedule(self):
        sleeps = []

        def always_fail(attempt):
            raise TransientFault("nope")

        policy = RetryPolicy(max_attempts=3, base_delay_s=0.25,
                             multiplier=2.0, max_delay_s=10.0, jitter=0.1,
                             seed=5)
        with pytest.raises(TransientFault):
            policy.run(always_fail, label="L", sleep=sleeps.append)
        assert sleeps == [policy.delay_s(1, "L"), policy.delay_s(2, "L")]

    def test_run_does_not_retry_nonretryable(self):
        calls = []

        def fail(attempt):
            calls.append(attempt)
            raise KeyError("permanent")

        with pytest.raises(KeyError):
            RetryPolicy(max_attempts=5).run(fail, sleep=lambda _s: None)
        assert calls == [1]

    def test_run_stops_at_the_deadline(self):
        calls = []

        def fail(attempt):
            calls.append(attempt)
            raise TransientFault("slow system")

        policy = RetryPolicy(max_attempts=10, base_delay_s=0.0, jitter=0.0,
                             max_deadline_s=1e-9)
        with pytest.raises(TransientFault):
            policy.run(fail, sleep=lambda _s: None)
        assert calls == [1]

    def test_default_policy_outlasts_default_failure_ceiling(self):
        assert default_retry_policy().max_attempts > \
            FaultPlan().max_failures_per_task


# ------------------------------------------------------------- executor site


def _identity(x):
    return x


def _reject_even(x):
    if x % 2 == 0:
        raise ValueError(f"even item {x}")
    return x


class TestExecutorInjection:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_injected_transients_are_retried_to_success(
        self, backend, install_plan
    ):
        install_plan(seed=3, task_transient=1.0, max_failures_per_task=1)
        executor = ParallelExecutor(backend, max_workers=2)
        assert executor.map(_identity, [1, 2, 3]) == [1, 2, 3]
        assert executor.stats[0].retries >= 1
        assert collect().total("retried") >= 1

    def test_injected_crashes_are_retried_to_success(self, install_plan):
        install_plan(seed=3, task_crash=1.0, max_failures_per_task=2)
        executor = ParallelExecutor("serial")
        assert executor.map(_identity, ["a", "b"]) == ["a", "b"]
        assert executor.stats[0].retries >= 1

    def test_process_backend_inherits_plan_via_env(self, monkeypatch):
        plan = FaultPlan(seed=3, task_transient=1.0, max_failures_per_task=1)
        monkeypatch.setenv(ENV_FAULTS, plan.to_json())
        clear_current_plan()
        degradation.reset()
        try:
            executor = ParallelExecutor("process", max_workers=2)
            assert executor.map(_identity, [10, 20]) == [10, 20]
            assert executor.stats[0].retries >= 1
        finally:
            clear_current_plan()
            degradation.reset()

    def test_exhausted_retries_surface_with_attempt_count(self, install_plan):
        install_plan(seed=3, task_transient=1.0, max_failures_per_task=99)
        executor = ParallelExecutor("serial")
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0)
        results = executor.map(_identity, [5], on_error="return", retry=policy)
        error = results[0]
        assert isinstance(error, ExecutionError)
        assert error.cause_type == "TransientFault"
        assert error.attempts == 2

    def test_nonretryable_failures_are_not_retried(self, install_plan):
        install_plan(seed=3, probe_loss=0.5)  # active plan, no exec faults
        executor = ParallelExecutor("serial")
        results = executor.map(_reject_even, [1, 2, 3], on_error="return")
        assert results[0] == 1 and results[2] == 3
        assert isinstance(results[1], ExecutionError)
        assert results[1].attempts == 1
        assert executor.stats[0].retries == 0

    def test_no_plan_means_no_default_retries(self):
        clear_current_plan()
        executor = ParallelExecutor("serial")
        results = executor.map(_reject_even, [2], on_error="return")
        assert isinstance(results[0], ExecutionError)
        assert executor.stats[0].retries == 0

    def test_injection_sites_are_label_keyed_not_order_keyed(self, install_plan):
        install_plan(seed=9, task_transient=0.5, max_failures_per_task=99)
        policy = RetryPolicy(max_attempts=1)
        labels = [f"unit/{i}" for i in range(12)]

        def failed_set(order):
            executor = ParallelExecutor("serial")
            results = executor.map(
                _identity, [labels[i] for i in order],
                labels=[labels[i] for i in order],
                on_error="return", retry=policy,
            )
            return {
                label for label, r in zip([labels[i] for i in order], results)
                if isinstance(r, ExecutionError)
            }

        forward = failed_set(range(12))
        backward = failed_set(range(11, -1, -1))
        assert forward == backward
        assert 0 < len(forward) < 12

    def test_retries_reported_in_timing_summary(self, install_plan):
        install_plan(seed=3, task_transient=1.0, max_failures_per_task=1)
        executor = ParallelExecutor("serial")
        executor.map(_identity, [1, 2])
        summary = timing_summary(executor.stats)
        assert summary["retries"] >= 1


class TestExecutionErrorRegressions:
    def test_attempts_survive_repeated_pickling(self):
        error = ExecutionError("t", "ValueError", "boom", "tb", attempts=3)
        clone = pickle.loads(pickle.dumps(pickle.loads(pickle.dumps(error))))
        assert clone.attempts == 3
        assert clone.label == "t"
        assert clone.cause_type == "ValueError"
        assert clone.worker_traceback == "tb"

    def test_wrap_preserves_root_cause_through_nesting(self):
        inner = ExecutionError("inner[0]", "KeyError", "lost key",
                               "inner traceback", attempts=2)
        outer = ExecutionError.wrap("outer[1]", inner, "outer traceback")
        assert outer.label == "outer[1] -> inner[0]"
        assert outer.cause_type == "KeyError"
        assert outer.cause_message == "lost key"
        assert outer.worker_traceback == "inner traceback"
        assert outer.attempts == 2

    def test_wrapped_nested_error_survives_double_pickle(self):
        # A nested-pool failure crosses two pickle boundaries; the root
        # cause must still be readable at the top.
        inner = ExecutionError("inner", "TimeoutError", "late", "root tb")
        shipped = pickle.loads(pickle.dumps(inner))
        outer = ExecutionError.wrap("outer", shipped, "outer tb")
        final = pickle.loads(pickle.dumps(outer))
        assert final.cause_type == "TimeoutError"
        assert final.worker_traceback == "root tb"
        assert "outer -> inner" in final.label

    def test_wrap_of_plain_exception_records_its_type(self):
        error = ExecutionError.wrap("t", ValueError("bad"), "tb text")
        assert error.cause_type == "ValueError"
        assert error.attempts == 1


# ------------------------------------------------------------ campaign site


def _campaign_job(n_targets=8, label="campaign/test", seed=4):
    latency = LatencyModel(seed=6)
    origin = Site("vp", GeoPoint(45.0, 7.0), AccessTechnology.CAMPUS)
    targets = {
        f"srv{i}": Site(f"srv{i}", GeoPoint(40.0 + i, 2.0 + i),
                        AccessTechnology.DATACENTER)
        for i in range(n_targets)
    }
    return CampaignJob(label=label, latency=latency, origin=origin,
                       targets=targets, probes=3, seed=seed)


class TestCampaignInjection:
    def test_clean_fallback_without_plan(self):
        clear_current_plan()
        job = _campaign_job()
        outcome = run_campaign_job_faulted(job)
        assert isinstance(outcome, CampaignOutcome)
        assert outcome.lost == outcome.timeouts == outcome.retried == 0
        assert outcome.measurements == run_campaign_job(job)

    def test_probe_loss_drops_targets_deterministically(self, install_plan):
        install_plan(seed=17, probe_loss=0.4)
        job = _campaign_job(n_targets=12)
        first = run_campaign_job_faulted(job)
        second = run_campaign_job_faulted(job)
        assert first == second
        assert 0 < first.lost < 12
        assert len(first.measurements) == 12 - first.lost

    def test_timeouts_are_retried_and_counted(self, install_plan):
        install_plan(seed=17, probe_timeout=1.0, max_failures_per_task=1)
        outcome = run_campaign_job_faulted(_campaign_job(n_targets=6))
        # Every first attempt times out, every second succeeds.
        assert len(outcome.measurements) == 6
        assert outcome.lost == 0
        assert outcome.timeouts == 6
        assert outcome.retried == 6

    def test_exhausted_timeouts_lose_the_target(self, install_plan):
        install_plan(seed=17, probe_timeout=1.0, max_failures_per_task=99)
        outcome = run_campaign_job_faulted(_campaign_job(n_targets=4))
        assert outcome.measurements == {}
        assert outcome.lost == 4

    def test_surviving_measurements_match_the_clean_values(self, install_plan):
        plan = install_plan(seed=17, probe_loss=0.4)
        job = _campaign_job(n_targets=10)
        faulted = run_campaign_job_faulted(job)
        set_current_plan(None)
        clean = run_campaign_job(job)
        # Loss happens before the RNG draw, so surviving targets see a
        # shifted stream — but they must be a strict subset of the target
        # set with plausible values, and the dropped set must re-derive.
        dropped = {
            t for t in job.targets
            if plan.decide(plan.probe_loss, "probe/loss", job.label, str(t))
        }
        assert set(faulted.measurements) == set(clean) - dropped

    def test_campaign_degradation_recorded_via_unpack(self, install_plan):
        from repro.geoloc.probing import _unpack_outcome

        install_plan(seed=1, probe_loss=0.5)
        outcome = CampaignOutcome(measurements={"a": 1.0}, lost=2,
                                  timeouts=3, retried=1)
        measurements = _unpack_outcome(_campaign_job(), outcome)
        assert measurements == {"a": 1.0}
        report = collect()
        tally = report.stages["geoloc/campaign"]
        assert tally["probes_lost"] == 2
        assert tally["timeouts"] == 3
        assert tally["retried"] == 1
        assert tally["completed"] == 1


# ----------------------------------------------------------------- CBG site


class TestCbgDegradation:
    @pytest.fixture(scope="class")
    def cbg(self):
        from repro.geo.landmarks import generate_landmarks
        from repro.geoloc.cbg import CbgGeolocator
        from repro.geoloc.probing import RttProber

        landmarks = generate_landmarks(seed=42).subsample(24, seed=1)
        latency = LatencyModel(seed=123)
        return CbgGeolocator(landmarks, RttProber(latency, probes=4, seed=99))

    def _target(self):
        return Site("srv:x", GeoPoint(48.1, 11.6), AccessTechnology.DATACENTER)

    def test_measurements_complete_without_plan(self, cbg):
        clear_current_plan()
        rtts = cbg.measure_target(self._target())
        assert len(rtts) == len(cbg.landmarks)

    def test_probe_loss_keeps_at_least_four_landmarks(self, cbg, install_plan):
        install_plan(seed=5, probe_loss=1.0)
        rtts = cbg.measure_target(self._target())
        assert len(rtts) == 4
        assert collect().stages["geoloc/cbg"]["probes_lost"] == \
            len(cbg.landmarks) - 4

    def test_lost_landmark_set_is_deterministic(self, cbg, install_plan):
        install_plan(seed=5, probe_loss=0.5)
        lost_a = set(cbg.measure_target(self._target()))
        lost_b = set(cbg.measure_target(self._target()))
        assert lost_a == lost_b

    def test_widening_factor_is_exact(self, cbg):
        clear_current_plan()
        rtts = cbg.measure_target(self._target())
        subset = dict(list(rtts.items())[: len(rtts) // 2])
        base = cbg.geolocate(subset)
        widened = cbg.geolocate(subset, expected_constraints=len(rtts))
        ratio = (len(rtts) / len(subset)) ** 0.5
        assert widened.confidence_radius_km == \
            pytest.approx(base.confidence_radius_km * ratio)
        assert widened.estimate == base.estimate

    def test_no_widening_without_loss(self, cbg):
        clear_current_plan()
        rtts = cbg.measure_target(self._target())
        base = cbg.geolocate(rtts)
        same = cbg.geolocate(rtts, expected_constraints=len(rtts))
        assert same.confidence_radius_km == base.confidence_radius_km

    def test_geolocate_target_widens_under_loss(self, cbg, install_plan):
        clear_current_plan()
        clean = cbg.geolocate_target(self._target())
        install_plan(seed=5, probe_loss=0.5)
        degraded = cbg.geolocate_target(self._target())
        assert degraded.constraints_used < clean.constraints_used
        assert degraded.confidence_radius_km > 0


# --------------------------------------------------------------- store site


class TestStoreQuarantine:
    def _key(self, tag):
        return stage_key("test/quarantine", {"tag": tag})

    def test_truncated_object_is_quarantined_and_healed(self, tmp_path):
        clear_current_plan()
        store = ArtifactStore(tmp_path)
        key = self._key("heal")
        store.put(key, {"payload": 1}, stage="t")
        path = store.object_path(key)
        path.write_bytes(path.read_bytes()[:4])  # corrupt in place
        assert store.get(key, "MISS", stage="t") == "MISS"
        assert store.stats.quarantined == 1
        assert not path.exists()
        assert len(list(store.quarantine_dir.iterdir())) == 1
        # The next put heals the slot.
        store.put(key, {"payload": 2}, stage="t")
        assert store.get(key, stage="t") == {"payload": 2}

    def test_quarantine_events_reach_the_ledger(self, tmp_path):
        clear_current_plan()
        store = ArtifactStore(tmp_path)
        key = self._key("ledger")
        store.put(key, [1, 2, 3], stage="s")
        store.object_path(key).write_bytes(b"garbage")
        store.get(key, stage="s")
        lifetime = store.lifetime_counters()
        assert lifetime["total"]["quarantined"] == 1
        assert lifetime["stages"]["s"]["quarantined"] == 1

    def test_injected_corruption_quarantines(self, tmp_path, install_plan):
        install_plan(seed=2, artifact_corrupt=1.0)
        store = ArtifactStore(tmp_path)
        key = self._key("injected")
        store.put(key, "value", stage="t")
        assert store.get(key, "MISS", stage="t") == "MISS"
        assert store.stats.quarantined == 1
        assert collect().stages["artifacts/store"]["quarantined"] == 1

    def test_injected_corruption_is_key_deterministic(self, tmp_path, install_plan):
        plan = install_plan(seed=2, artifact_corrupt=0.5)
        store = ArtifactStore(tmp_path)
        hits = misses = 0
        for i in range(20):
            key = self._key(f"det{i}")
            store.put(key, i, stage="t")
            expected_corrupt = plan.decide(0.5, "artifacts/corrupt", key)
            value = store.get(key, "MISS", stage="t")
            if expected_corrupt:
                assert value == "MISS"
                misses += 1
            else:
                assert value == i
                hits += 1
        assert hits > 0 and misses > 0

    def test_inert_plan_never_corrupts(self, tmp_path, install_plan):
        install_plan(seed=2)  # all rates zero
        store = ArtifactStore(tmp_path)
        for i in range(10):
            key = self._key(f"inert{i}")
            store.put(key, i)
            assert store.get(key) == i
        assert store.stats.quarantined == 0

    def test_clear_removes_the_quarantine(self, tmp_path):
        clear_current_plan()
        store = ArtifactStore(tmp_path)
        key = self._key("clear")
        store.put(key, 1)
        store.object_path(key).write_bytes(b"x")
        store.get(key)
        assert store.quarantine_dir.is_dir()
        store.clear()
        assert not store.quarantine_dir.exists()


# --------------------------------------------------------------- logio site


def _flow_text(n=10):
    records = [
        FlowRecord(src_ip=i + 1, dst_ip=100 + i, num_bytes=1000 * (i + 1),
                   t_start=float(i), t_end=float(i) + 0.5,
                   video_id=f"v{i}", resolution="360p")
        for i in range(n)
    ]
    return dumps(records)


class TestLogioGarble:
    def test_round_trip_is_exact_without_plan(self):
        clear_current_plan()
        text = _flow_text(5)
        records = loads(text)
        assert len(records) == 5
        assert dumps(records) == text

    def test_garbled_lines_are_skipped_and_counted(self, install_plan):
        install_plan(seed=6, line_garble=1.0)
        assert loads(_flow_text(8)) == []
        tally = collect().stages["trace/logio"]
        assert tally["skipped"] == 8
        assert tally["degraded"] == 1

    def test_garble_pattern_is_deterministic(self, install_plan):
        install_plan(seed=6, line_garble=0.5)
        text = _flow_text(20)
        first = [r.video_id for r in loads(text)]
        second = [r.video_id for r in loads(text)]
        assert first == second
        assert 0 < len(first) < 20

    def test_surviving_records_parse_to_clean_values(self, install_plan):
        install_plan(seed=6, line_garble=0.5)
        text = _flow_text(20)
        survivors = {r.video_id: r for r in loads(text)}
        set_current_plan(None)
        clean = {r.video_id: r for r in loads(text)}
        for video_id, record in survivors.items():
            assert record == clean[video_id]

    def test_genuinely_malformed_line_still_raises_by_default(self, install_plan):
        install_plan(seed=6, line_garble=1.0)
        # Injected garble is forgiven; pre-existing damage is not.
        set_current_plan(None)
        text = _flow_text(2) + "broken\tline\n"
        with pytest.raises(ValueError):
            loads(text)
        assert len(loads(text, on_error="skip")) == 2

    def test_file_reader_keys_garble_on_the_file_name(self, tmp_path, install_plan):
        from repro.trace.logio import read_flow_log

        install_plan(seed=6, line_garble=0.5)
        path_a = tmp_path / "a.tsv"
        path_b = tmp_path / "b.tsv"
        text = _flow_text(20)
        path_a.write_text(text, encoding="ascii")
        path_b.write_text(text, encoding="ascii")
        ids_a = {r.video_id for r in read_flow_log(path_a)}
        ids_b = {r.video_id for r in read_flow_log(path_b)}
        assert ids_a != ids_b  # different sources, different garble sites

    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            loads(_flow_text(1), on_error="explode")


# ----------------------------------------------------------- cache namespace


class TestCacheKeyNamespace:
    CONFIG = {"scale": 0.01, "seed": 7}

    def test_inert_plan_leaves_keys_untouched(self, install_plan):
        clear_current_plan()
        clean_key = stage_key("sim/run", self.CONFIG)
        install_plan(seed=42)  # inert
        assert stage_key("sim/run", self.CONFIG) == clean_key

    def test_active_plan_gets_its_own_namespace(self, install_plan):
        clear_current_plan()
        clean_key = stage_key("sim/run", self.CONFIG)
        install_plan(seed=42, probe_loss=0.1)
        assert stage_key("sim/run", self.CONFIG) != clean_key

    def test_distinct_plans_get_distinct_namespaces(self, install_plan):
        install_plan(seed=42, probe_loss=0.1)
        key_a = stage_key("sim/run", self.CONFIG)
        set_current_plan(FaultPlan(seed=43, probe_loss=0.1))
        key_b = stage_key("sim/run", self.CONFIG)
        set_current_plan(FaultPlan(seed=42, probe_loss=0.2))
        key_c = stage_key("sim/run", self.CONFIG)
        assert len({key_a, key_b, key_c}) == 3

    def test_same_plan_reproduces_the_same_namespace(self, install_plan):
        install_plan(seed=42, probe_loss=0.1)
        key_a = stage_key("sim/run", self.CONFIG)
        set_current_plan(FaultPlan(seed=42, probe_loss=0.1))
        assert stage_key("sim/run", self.CONFIG) == key_a


# ---------------------------------------------------------- degradation report


class TestDegradationReport:
    def test_record_is_a_noop_without_a_plan(self):
        clear_current_plan()
        degradation.reset()
        degradation.record("stage", completed=1)
        assert collect().stages == {}

    def test_record_accumulates_and_drops_zero_deltas(self, install_plan):
        install_plan(seed=1, probe_loss=0.1)
        degradation.record("s", completed=1, retried=0)
        degradation.record("s", completed=2, probes_lost=3)
        report = collect()
        assert report.stages["s"] == {"completed": 3, "probes_lost": 3}
        assert "retried" not in report.stages["s"]

    def test_stage_completed_marks_degradation(self, install_plan):
        install_plan(seed=1, probe_loss=0.1)
        degradation.stage_completed("a")
        degradation.stage_completed("b", degraded=True)
        report = collect()
        assert report.stages["a"] == {"completed": 1}
        assert report.stages["b"] == {"completed": 1, "degraded": 1}

    def test_totals_and_degraded_flag(self):
        report = DegradationReport(stages={
            "x": {"completed": 2, "retried": 1},
            "y": {"completed": 1, "probes_lost": 4},
        })
        assert report.totals == {"completed": 3, "retried": 1, "probes_lost": 4}
        assert report.total("retried") == 1
        assert report.total("absent") == 0
        assert report.degraded

    def test_completion_alone_is_not_degradation(self):
        report = DegradationReport(stages={"x": {"completed": 5}})
        assert not report.degraded

    def test_as_dict_appends_the_total_pseudo_stage(self):
        report = DegradationReport(stages={"x": {"completed": 1}})
        doc = report.as_dict()
        assert list(doc) == ["x", "TOTAL"]
        assert doc["TOTAL"] == {"completed": 1}

    def test_collect_reset_after(self, install_plan):
        install_plan(seed=1, probe_loss=0.1)
        degradation.record("s", completed=1)
        assert collect(reset_after=True).stages != {}
        assert collect().stages == {}

    def test_render_degradation_table(self):
        report = DegradationReport(stages={
            "geoloc/campaign": {"completed": 5, "probes_lost": 7},
            "exec/map": {"retried": 2},
        })
        text = render_degradation_table(report)
        assert "DEGRADATION REPORT" in text
        assert "probes_lost" in text
        assert "geoloc/campaign" in text
        assert "TOTAL" in text

    def test_timing_summary_includes_degradation(self, install_plan):
        install_plan(seed=1, task_transient=1.0, max_failures_per_task=1)
        executor = ParallelExecutor("serial")
        executor.map(_identity, [1])
        summary = timing_summary(executor.stats, degradation=collect())
        assert summary["degradation"]["TOTAL"]["retried"] >= 1

    def test_timing_summary_omits_empty_degradation(self):
        summary = timing_summary([], degradation=DegradationReport())
        assert "degradation" not in summary
