"""Tests for the delay model — the physical substrate every measurement uses."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.coords import GeoPoint, haversine_km
from repro.net.latency import (
    AccessTechnology,
    C_FIBER_KM_PER_MS,
    LatencyModel,
    PROCESSING_MS,
    Site,
)


def make_site(key, lat, lon, access=AccessTechnology.CAMPUS, extra=0.0, group=None):
    return Site(key=key, point=GeoPoint(lat, lon), access=access, extra_ms=extra, group=group)


TURIN = make_site("a", 45.07, 7.69)
MILAN = make_site("b", 45.46, 9.19)
TOKYO = make_site("c", 35.68, 139.65)


class TestFloor:
    def test_deterministic(self):
        model = LatencyModel(seed=1)
        assert model.min_rtt_ms(TURIN, MILAN) == model.min_rtt_ms(TURIN, MILAN)

    def test_symmetric(self):
        model = LatencyModel(seed=1)
        assert model.min_rtt_ms(TURIN, MILAN) == pytest.approx(
            model.min_rtt_ms(MILAN, TURIN)
        )

    def test_respects_physical_bound(self):
        model = LatencyModel(seed=2)
        distance = haversine_km(TURIN.point, TOKYO.point)
        assert model.min_rtt_ms(TURIN, TOKYO) >= LatencyModel.ideal_rtt_ms(distance)

    def test_grows_with_distance_scale(self):
        model = LatencyModel(seed=3)
        near = model.min_rtt_ms(TURIN, MILAN)
        far = model.min_rtt_ms(TURIN, TOKYO)
        assert far > near * 5

    def test_access_technology_matters(self):
        model = LatencyModel(seed=4)
        adsl = make_site("a", 45.07, 7.69, AccessTechnology.ADSL)
        ftth = make_site("a", 45.07, 7.69, AccessTechnology.FTTH)
        assert model.min_rtt_ms(adsl, MILAN) > model.min_rtt_ms(ftth, MILAN) + 5.0

    def test_extra_ms_adds(self):
        model = LatencyModel(seed=5)
        plain = make_site("a", 45.07, 7.69)
        egress = make_site("a", 45.07, 7.69, extra=10.0)
        assert model.min_rtt_ms(egress, MILAN) == pytest.approx(
            model.min_rtt_ms(plain, MILAN) + 10.0
        )

    def test_seed_changes_paths(self):
        a = LatencyModel(seed=1).min_rtt_ms(TURIN, TOKYO)
        b = LatencyModel(seed=2).min_rtt_ms(TURIN, TOKYO)
        assert a != b

    def test_breakdown_consistent(self):
        model = LatencyModel(seed=6)
        info = model.floor_breakdown(TURIN, MILAN)
        reconstructed = (
            info["propagation_ms"] + info["detour_ms"] + info["access_ms"]
            + info["extra_ms"] + info["processing_ms"]
        )
        assert info["floor_ms"] == pytest.approx(reconstructed)


class TestGroups:
    def test_same_group_shares_path(self):
        model = LatencyModel(seed=7)
        client1 = make_site("client:1", 45.07, 7.69, group="vp:X")
        client2 = make_site("client:2", 45.07, 7.69, group="vp:X")
        assert model.min_rtt_ms(client1, TOKYO) == model.min_rtt_ms(client2, TOKYO)

    def test_different_groups_may_differ(self):
        model = LatencyModel(seed=7)
        samples = set()
        for i in range(8):
            site = make_site(f"client:{i}", 45.07, 7.69, group=f"g{i}")
            samples.add(round(model.min_rtt_ms(site, TOKYO), 6))
        assert len(samples) > 1

    def test_detour_override(self):
        plain = LatencyModel(seed=8)
        pinned = LatencyModel(seed=8, detour_overrides={("gA", "gB"): 50.0})
        a = make_site("a", 45.0, 7.0, group="gA")
        b = make_site("b", 45.4, 9.2, group="gB")
        base = plain.floor_breakdown(a, b)
        forced = pinned.floor_breakdown(a, b)
        assert forced["detour_ms"] == 50.0
        assert forced["floor_ms"] == pytest.approx(
            base["floor_ms"] - base["detour_ms"] + 50.0
        )

    def test_detour_override_order_insensitive(self):
        pinned = LatencyModel(seed=8, detour_overrides={("gB", "gA"): 50.0})
        a = make_site("a", 45.0, 7.0, group="gA")
        b = make_site("b", 45.4, 9.2, group="gB")
        assert pinned.path_profile(a, b).detour_ms == 50.0

    def test_negative_detour_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(seed=0, detour_overrides={("a", "b"): -1.0})


class TestSampling:
    def test_samples_above_floor(self):
        model = LatencyModel(seed=9)
        rng = random.Random(0)
        floor = model.min_rtt_ms(TURIN, MILAN)
        for _ in range(100):
            assert model.sample_rtt_ms(TURIN, MILAN, rng) > floor

    def test_min_filter_converges(self):
        model = LatencyModel(seed=10)
        rng = random.Random(1)
        floor = model.min_rtt_ms(TURIN, MILAN)
        measured = model.measure_min_rtt_ms(TURIN, MILAN, rng, probes=30)
        jitter = model.path_profile(TURIN, MILAN).jitter_ms
        assert floor < measured < floor + jitter

    def test_probe_count_validated(self):
        model = LatencyModel(seed=11)
        with pytest.raises(ValueError):
            model.measure_min_rtt_ms(TURIN, MILAN, random.Random(0), probes=0)

    @given(st.floats(min_value=0.0, max_value=500.0))
    @settings(max_examples=50)
    def test_distance_bound_inverse(self, rtt):
        d = LatencyModel.max_distance_km(rtt)
        assert LatencyModel.ideal_rtt_ms(d) == pytest.approx(rtt, abs=1e-9)
