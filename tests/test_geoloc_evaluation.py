"""Tests for the geolocation evaluation harness."""

import pytest

from repro.geo.cities import default_atlas
from repro.geo.coords import destination_point
from repro.geoloc.evaluation import evaluate_methods


@pytest.fixture
def truth():
    atlas = default_atlas()
    return {
        "a": atlas.get("Milan").point,
        "b": atlas.get("Chicago").point,
        "c": atlas.get("Tokyo").point,
    }


class TestEvaluate:
    def test_perfect_method(self, truth):
        report = evaluate_methods({"oracle": lambda t: truth[t]}, truth)
        score = report.score("oracle")
        assert score.answer_rate == 1.0
        assert score.median_error_km == 0.0

    def test_offset_method(self, truth):
        def off_by_100(t):
            return destination_point(truth[t], 90.0, 100.0)

        report = evaluate_methods({"off": off_by_100}, truth)
        assert report.score("off").median_error_km == pytest.approx(100.0, rel=0.01)

    def test_partial_answers(self, truth):
        def only_a(t):
            return truth[t] if t == "a" else None

        report = evaluate_methods({"partial": only_a}, truth)
        score = report.score("partial")
        assert score.answered == 1
        assert score.answer_rate == pytest.approx(1 / 3)

    def test_no_answers(self, truth):
        report = evaluate_methods({"mute": lambda t: None}, truth)
        score = report.score("mute")
        assert score.answered == 0
        with pytest.raises(ValueError):
            score.median_error_km

    def test_render(self, truth):
        report = evaluate_methods(
            {"oracle": lambda t: truth[t], "mute": lambda t: None}, truth
        )
        text = report.render()
        assert "oracle" in text and "mute" in text and "-" in text

    def test_unknown_method(self, truth):
        report = evaluate_methods({}, truth)
        with pytest.raises(KeyError):
            report.score("nope")

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError):
            evaluate_methods({}, {})


class TestEndToEnd:
    def test_three_real_methods(self, pipeline, study_results):
        """CBG vs database vs shortest-ping through the harness."""
        from repro.geoloc.geodb import build_reference_geodb
        from repro.geoloc.probing import RttProber
        from repro.geoloc.shortest_ping import ShortestPingGeolocator
        from repro.sim.seeding import derive_seed

        server_map = pipeline.server_map
        truth = {}
        for cluster in server_map.clusters[:12]:
            ip = cluster.server_ips[0]
            site = pipeline.site_of_ip(ip)
            if site is not None:
                truth[str(ip)] = site.point

        registry = next(iter(study_results.values())).world.registry
        geodb = build_reference_geodb(registry)
        latency = next(iter(study_results.values())).world.latency
        sp = ShortestPingGeolocator(
            pipeline.landmarks, RttProber(latency, probes=4, seed=derive_seed(1, "sp"))
        )

        def cbg_method(label):
            return server_map.by_ip[int(label)].estimate

        def db_method(label):
            city = geodb.lookup(int(label))
            return None if city is None else city.point

        def sp_method(label):
            site = pipeline.site_of_ip(int(label))
            return sp.geolocate_target(site).estimate

        report = evaluate_methods(
            {"cbg": cbg_method, "geodb": db_method, "shortest-ping": sp_method},
            truth,
        )
        assert report.score("cbg").median_error_km < 300.0
        assert report.score("geodb").median_error_km > 1000.0
        assert report.score("shortest-ping").answer_rate == 1.0
