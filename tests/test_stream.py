"""Tests for the streaming ingestion path (repro.stream).

The load-bearing property throughout is *byte parity*: the streamed path
must reproduce the batch path's records, sessions, aggregates, report
text and content digests exactly, at any window size, including under
within-watermark disorder.
"""

from __future__ import annotations

import hashlib
import io
import math
from collections import Counter

import pytest

from repro.cli import main
from repro.core.sessions import build_sessions, flows_per_session_histogram
from repro.core.streaming import HotSpotDetector, LoadBalanceDetector
from repro.core.summary import summarize
from repro.faults import report as degradation
from repro.faults.plan import FaultPlan, clear_current_plan, set_current_plan
from repro.sim.scenarios import PAPER_SCENARIOS, build_world
from repro.stream import (
    FlowArrival,
    StreamingDigest,
    TumblingWindower,
    WatermarkAdvance,
    WindowedSessionBuilder,
    inject_disorder,
    replay_flow_log,
    replay_records,
    simulated_stream,
)
from repro.stream.accumulators import (
    HourlyShareAccumulator,
    SessionStatsAccumulator,
    TrafficAccumulator,
)
from repro.stream.study import stream_dataset
from repro.trace.logio import format_record, write_flow_log
from repro.trace.records import FlowRecord


def rec(t_start, t_end, src=1, dst=100, num_bytes=5000, video="vidA"):
    return FlowRecord(src_ip=src, dst_ip=dst, num_bytes=num_bytes,
                      t_start=t_start, t_end=t_end, video_id=video,
                      resolution="360p")


def drain(windower, events):
    """Push events; return (sealed windows, concatenated records)."""
    windows = []
    for event in events:
        windows.extend(windower.push(event))
    windows.extend(windower.finish())
    return windows, [r for w in windows for r in w.records]


class TestTumblingWindower:
    def test_window_boundaries_are_half_open(self):
        w = TumblingWindower(10.0)
        events = [
            FlowArrival(rec(9.999, 11.0), seq=0),
            FlowArrival(rec(10.0, 12.0), seq=1),   # exactly at the edge
            WatermarkAdvance(t_s=10.0),            # seals [0, 10) only
        ]
        sealed = []
        for event in events:
            sealed.extend(w.push(event))
        assert [win.index for win in sealed] == [0]
        assert len(sealed[0]) == 1
        late = w.finish()
        assert [win.index for win in late] == [1]

    def test_records_sorted_by_t_start_t_end_seq(self):
        w = TumblingWindower(100.0)
        arrivals = [rec(5.0, 9.0), rec(1.0, 3.0), rec(5.0, 9.0), rec(5.0, 5.5)]
        events = [FlowArrival(r, seq=i) for i, r in enumerate(arrivals)]
        windows, ordered = drain(w, events)
        assert len(windows) == 1
        assert ordered == sorted(
            arrivals, key=lambda r: (r.t_start, r.t_end)
        )
        # Equal (t_start, t_end) records stay in seq order.
        assert ordered[2] is arrivals[0] and ordered[3] is arrivals[2]

    def test_late_arrivals_are_dropped_and_counted(self):
        w = TumblingWindower(10.0)
        w.push(FlowArrival(rec(5.0, 6.0), seq=0))
        w.advance(20.0)
        assert w.push(FlowArrival(rec(3.0, 4.0), seq=1)) == []
        assert w.late_records == 1
        # In-watermark arrivals still land.
        w.push(FlowArrival(rec(25.0, 26.0), seq=2))
        assert sum(len(win) for win in w.finish()) == 1

    def test_watermark_regression_raises(self):
        w = TumblingWindower(10.0)
        w.advance(50.0)
        with pytest.raises(ValueError):
            w.advance(49.0)

    def test_negative_times_are_windowed_not_dropped(self):
        w = TumblingWindower(10.0)
        assert w.sealed_boundary_s == -math.inf
        w.push(FlowArrival(rec(-25.0, -24.0), seq=0))
        windows, ordered = drain(w, [])
        assert [win.index for win in windows] == [-3]
        assert len(ordered) == 1

    def test_sealed_boundary_tracks_watermark_floor(self):
        w = TumblingWindower(10.0)
        w.advance(34.0)
        assert w.sealed_boundary_s == 30.0
        w.advance(math.inf)
        assert w.sealed_boundary_s == math.inf

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            TumblingWindower(0.0)


class TestWindowedSessionBuilder:
    def stream_sessions(self, records, window_s, gap_s):
        w = TumblingWindower(window_s)
        b = WindowedSessionBuilder(gap_s)
        out = []
        for i, r in enumerate(sorted(records, key=lambda r: r.t_start)):
            for win in w.push(WatermarkAdvance(t_s=r.t_start)):
                out.extend(b.observe_window(win))
            out.extend(b.advance(w.sealed_boundary_s))
            w.push(FlowArrival(r, seq=i))
        for win in w.finish():
            out.extend(b.observe_window(win))
        out.extend(b.finish())
        return out

    def canon(self, sessions):
        return Counter(
            (s.client_ip, s.video_id, tuple(s.flows)) for s in sessions
        )

    def test_matches_batch_on_gap_breaks(self):
        records = [rec(0.0, 1.0), rec(1.5, 2.0), rec(10.0, 11.0),
                   rec(11.2, 12.0), rec(30.0, 31.0)]
        for window_s in (1.0, 5.0, 100.0):
            streamed = self.stream_sessions(records, window_s, gap_s=2.0)
            assert self.canon(streamed) == self.canon(
                build_sessions(records, gap_s=2.0)
            )

    def test_long_flow_holds_session_open_across_windows(self):
        # A flow spanning many windows: the horizon (t_end) keeps the
        # session open even after its start window sealed long ago.
        records = [rec(0.0, 50.0), rec(51.0, 52.0)]
        streamed = self.stream_sessions(records, window_s=5.0, gap_s=2.0)
        assert self.canon(streamed) == self.canon(
            build_sessions(records, gap_s=2.0)
        )
        assert len(streamed) == 1 and streamed[0].num_flows == 2

    def test_sessions_close_only_past_sealed_boundary(self):
        b = WindowedSessionBuilder(gap_s=2.0)
        w = TumblingWindower(10.0)
        w.push(FlowArrival(rec(5.0, 6.0), seq=0))
        for win in w.advance(10.0):
            b.observe_window(win)
        # horizon 6 + gap 2 = 8 <= boundary 10: closes.
        assert len(b.advance(w.sealed_boundary_s)) == 1
        assert b.open_sessions == 0

    def test_rejects_nonpositive_gap(self):
        with pytest.raises(ValueError):
            WindowedSessionBuilder(0.0)


class TestReplaySources:
    def test_replay_ends_with_infinite_watermark(self):
        events = list(replay_records([rec(1.0, 2.0)]))
        assert isinstance(events[-1], WatermarkAdvance)
        assert math.isinf(events[-1].t_s)
        assert sum(isinstance(e, FlowArrival) for e in events) == 1

    def test_watermark_lag_tolerates_local_disorder(self):
        records = [rec(0.0, 1.0), rec(3.0, 4.0), rec(2.0, 3.0), rec(9.0, 9.5)]
        w = TumblingWindower(5.0)
        _, ordered = drain(w, replay_records(records, watermark_lag_s=2.0))
        assert w.late_records == 0
        assert [r.t_start for r in ordered] == [0.0, 2.0, 3.0, 9.0]

    def test_no_lag_drops_out_of_order_records(self):
        records = [rec(5.0, 6.0), rec(1.0, 2.0)]
        w = TumblingWindower(1.0)
        _, ordered = drain(w, replay_records(records))
        assert w.late_records == 1
        assert [r.t_start for r in ordered] == [5.0]

    def test_negative_lag_rejected(self):
        with pytest.raises(ValueError):
            list(replay_records([], watermark_lag_s=-1.0))

    def test_flow_log_replay_equals_in_memory_replay(self, tmp_path):
        records = [rec(float(i), float(i) + 0.5, dst=100 + i % 3)
                   for i in range(20)]
        path = tmp_path / "flows.tsv"
        write_flow_log(records, path)
        from_file = [e.record for e in replay_flow_log(path)
                     if isinstance(e, FlowArrival)]
        assert from_file == records


class TestStreamingDigest:
    def test_matches_canonical_serialisation(self):
        records = [rec(3.0, 4.0), rec(1.0, 2.0), rec(1.0, 5.0)]
        w = TumblingWindower(10.0)
        digest = StreamingDigest()
        windows, ordered = drain(w, replay_records(records, watermark_lag_s=10.0))
        for win in windows:
            digest.update_window(win)
        expected = hashlib.sha256()
        for r in sorted(records, key=lambda r: (r.t_start, r.t_end)):
            expected.update(format_record(r).encode("ascii"))
            expected.update(b"\n")
        assert digest.hexdigest() == expected.hexdigest()
        assert digest.records == 3


@pytest.fixture(scope="module")
def streamed_eu1(study_results):
    """EU1-ADSL consumed as a stream, from a fresh same-seed world."""
    from tests.conftest import TEST_SCALE, TEST_SEED

    world = build_world(PAPER_SCENARIOS["EU1-ADSL"], scale=TEST_SCALE,
                        seed=TEST_SEED)
    return stream_dataset(world, window_s=3600.0)


class TestSimulatedStreamParity:
    def test_digest_matches_batch_dataset(self, streamed_eu1, eu1_adsl):
        assert (streamed_eu1.digest.hexdigest()
                == eu1_adsl.dataset.content_digest())

    def test_summary_matches_batch(self, streamed_eu1, eu1_adsl):
        assert (streamed_eu1.traffic.summary("EU1-ADSL")
                == summarize(eu1_adsl.dataset))

    def test_server_ips_match_batch(self, streamed_eu1, eu1_adsl):
        assert streamed_eu1.traffic.server_ips() == eu1_adsl.dataset.server_ips

    def test_session_histogram_matches_batch(self, streamed_eu1, eu1_adsl):
        batch = flows_per_session_histogram(
            build_sessions(eu1_adsl.dataset.records, gap_s=1.0)
        )
        assert streamed_eu1.session_stats.histogram() == batch

    def test_memory_stays_windowed(self, streamed_eu1):
        assert streamed_eu1.windows > 100
        assert streamed_eu1.late_records == 0
        assert (streamed_eu1.peak_window_records
                < streamed_eu1.traffic.flows / 10)

    def test_window_size_does_not_change_the_digest(self, streamed_eu1):
        from tests.conftest import TEST_SCALE, TEST_SEED

        world = build_world(PAPER_SCENARIOS["EU1-ADSL"], scale=TEST_SCALE,
                            seed=TEST_SEED)
        coarse = stream_dataset(world, window_s=86400.0)
        assert coarse.digest.hexdigest() == streamed_eu1.digest.hexdigest()
        assert coarse.windows < streamed_eu1.windows


class TestAccumulators:
    def windows_of(self, records, window_s=10.0):
        w = TumblingWindower(window_s)
        windows, _ = drain(
            w, replay_records(records, watermark_lag_s=1e9)
        )
        return windows

    def test_traffic_accumulator_totals(self):
        records = [rec(0.0, 1.0, src=1, dst=100, num_bytes=500),
                   rec(5.0, 6.0, src=2, dst=100, num_bytes=4000),
                   rec(25.0, 26.0, src=1, dst=101, num_bytes=7000)]
        acc = TrafficAccumulator()
        for win in self.windows_of(records):
            acc.observe_window(win)
        summary = acc.summary("X")
        assert summary.flows == 3
        assert summary.volume_bytes == 11500
        assert summary.num_servers == 2
        assert summary.num_clients == 2
        assert acc.server_ips() == [100, 101]

    def test_video_flow_threshold(self):
        # 1000-byte threshold separates control from video flows.
        records = [rec(0.0, 1.0, num_bytes=999), rec(1.0, 2.0, num_bytes=1000)]
        acc = TrafficAccumulator()
        for win in self.windows_of(records):
            acc.observe_window(win)
        stats = acc._servers[100]
        assert stats.num_flows == 2 and stats.video_flows == 1

    def test_hourly_accumulator_counts_video_flows_per_hour(self):
        records = [rec(10.0, 11.0), rec(3620.0, 3621.0),
                   rec(3630.0, 3631.0, num_bytes=10)]  # control flow
        acc = HourlyShareAccumulator()
        for win in self.windows_of(records, window_s=1800.0):
            acc.observe_window(win)
        assert acc._counts == {100: {0: 1, 1: 1}}

    def test_session_stats_histogram_parity(self):
        records = [rec(float(i), float(i) + 0.1) for i in range(5)]
        sessions = build_sessions(records, gap_s=0.5)
        acc = SessionStatsAccumulator()
        acc.add(sessions)
        assert acc.histogram() == flows_per_session_histogram(sessions)

    def test_empty_histogram_raises(self):
        with pytest.raises(ValueError):
            SessionStatsAccumulator().histogram()


class TestDetectors:
    def windows_of(self, records, window_s=10.0):
        w = TumblingWindower(window_s)
        windows, _ = drain(w, replay_records(records, watermark_lag_s=1e9))
        return windows

    def test_hot_spot_fires_on_spike_not_on_debut(self):
        records = []
        t = 0.0
        for window in range(4):
            for _ in range(2):          # steady baseline
                records.append(rec(t, t + 0.1, video="steady"))
                t += 1.0
            t = (window + 1) * 10.0
        for i in range(20):             # the spike, in window 4
            records.append(rec(40.0 + i * 0.1, 40.5 + i * 0.1, video="steady"))
        detector = HotSpotDetector(min_flows=10, spike_factor=3.0)
        events = []
        for win in self.windows_of(records):
            events.extend(detector.observe_window(win))
        assert [e.video_id for e in events] == ["steady"]
        assert events[0].window_index == 4
        assert events[0].flows == 20
        assert events[0].baseline == pytest.approx(2.0)

    def test_first_appearance_never_spikes(self):
        records = [rec(i * 0.1, i * 0.1 + 0.05, video="debut")
                   for i in range(50)]
        detector = HotSpotDetector(min_flows=10, spike_factor=3.0)
        events = []
        for win in self.windows_of(records, window_s=100.0):
            events.extend(detector.observe_window(win))
        assert events == []

    def test_load_balance_classifies_spread_windows(self):
        concentrated = [rec(1.0, 2.0, dst=100, num_bytes=9000),
                        rec(2.0, 3.0, dst=101, num_bytes=1000)]
        spread = [rec(11.0, 12.0, dst=100, num_bytes=3000),
                  rec(12.0, 13.0, dst=101, num_bytes=3500),
                  rec(13.0, 14.0, dst=102, num_bytes=3500)]
        detector = LoadBalanceDetector(spread_threshold=0.5)
        for win in self.windows_of(concentrated + spread):
            detector.observe_window(win)
        assert len(detector.samples) == 2
        assert detector.samples[0].top_share == pytest.approx(0.9)
        assert detector.samples[1].num_servers == 3
        assert detector.spread_windows == 1
        assert detector.spread_fraction == pytest.approx(0.5)


class TestDisorderInjection:
    @pytest.fixture(autouse=True)
    def clean_degradation(self):
        degradation.reset()
        yield
        clear_current_plan()
        degradation.reset()

    def plan(self, rate=0.4):
        return FaultPlan(seed=3, record_disorder=rate)

    def events(self, n=40):
        records = [rec(float(i), float(i) + 0.5, dst=100 + i % 4)
                   for i in range(n)]
        return records, list(replay_records(records))

    def test_preserves_every_record(self):
        records, events = self.events()
        out = list(inject_disorder(iter(events), self.plan(), "t"))
        arrivals = [e.record for e in out if isinstance(e, FlowArrival)]
        assert Counter(arrivals) == Counter(records)

    def test_actually_reorders(self):
        _, events = self.events()
        out = list(inject_disorder(iter(events), self.plan(), "t"))
        seqs = [e.seq for e in out if isinstance(e, FlowArrival)]
        assert seqs != sorted(seqs)

    def test_is_deterministic(self):
        _, events = self.events()
        first = list(inject_disorder(iter(events), self.plan(), "t"))
        _, events = self.events()
        second = list(inject_disorder(iter(events), self.plan(), "t"))
        assert first == second

    def test_watermarks_stay_monotone_and_safe(self):
        _, events = self.events()
        out = list(inject_disorder(iter(events), self.plan(), "t"))
        watermark = -math.inf
        pending = []
        for event in out:
            if isinstance(event, WatermarkAdvance):
                assert event.t_s >= watermark
                watermark = event.t_s
            else:
                assert event.record.t_start >= watermark or math.isinf(watermark)
        assert math.isinf(watermark)

    def test_windower_absorbs_injected_disorder(self):
        records, events = self.events()
        w = TumblingWindower(7.0)
        _, ordered = drain(w, inject_disorder(iter(events), self.plan(), "t"))
        assert w.late_records == 0
        assert ordered == sorted(records, key=lambda r: (r.t_start, r.t_end))

    def test_degradation_is_recorded(self):
        # record() only tallies while a plan is installed.
        set_current_plan(self.plan())
        _, events = self.events()
        list(inject_disorder(iter(events), self.plan(), "t"))
        report = degradation.collect()
        assert report.stages["stream/source"]["disordered"] > 0

    def test_active_plan_changes_no_bytes_end_to_end(self):
        world = build_world(PAPER_SCENARIOS["EU1-FTTH"], scale=0.004, seed=3,
                            duration_s=86400.0)
        baseline = stream_dataset(world, window_s=3600.0)
        set_current_plan(self.plan(rate=0.2))
        world = build_world(PAPER_SCENARIOS["EU1-FTTH"], scale=0.004, seed=3,
                            duration_s=86400.0)
        disordered = stream_dataset(world, window_s=3600.0)
        assert disordered.digest.hexdigest() == baseline.digest.hexdigest()
        assert disordered.late_records == 0
        assert (disordered.session_stats.histogram()
                == baseline.session_stats.histogram())


class TestCliStream:
    def run(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_stream_study_is_byte_identical_at_two_window_sizes(self):
        base_args = ("study", "--scale", "0.004", "--landmarks", "40",
                     "--digests")
        code, batch = self.run(*base_args)
        assert code == 0
        for window in ("3600", "900"):
            code, streamed = self.run(*base_args, "--stream",
                                      "--window-s", window)
            assert code == 0
            assert streamed == batch

    def test_stream_rejects_full_and_validate(self):
        for flag in ("--full", "--validate", "--shared"):
            code, text = self.run("study", "--stream", flag,
                                  "--scale", "0.004", "--landmarks", "40")
            assert code == 2
            assert text == ""

    def test_sessions_stream_is_byte_identical(self, tmp_path, eu1_adsl):
        path = tmp_path / "flows.tsv"
        write_flow_log(eu1_adsl.dataset.records, path)
        args = ("sessions", "--flows", str(path), "--gaps", "1,10,60")
        code, batch = self.run(*args)
        assert code == 0
        code, streamed = self.run(*args, "--stream", "--window-s", "1800")
        assert code == 0
        assert streamed == batch

    def test_sessions_stream_empty_log(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("")
        code, text = self.run("sessions", "--flows", str(path), "--stream")
        assert code == 1
        assert "flow log is empty" in text
