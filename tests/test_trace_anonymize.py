"""Tests for prefix-preserving anonymisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.ip import parse_ip, slash24_of
from repro.trace.anonymize import (
    PrefixPreservingAnonymizer,
    shared_prefix_bits,
    verify_prefix_preservation,
)

ips = st.integers(min_value=0, max_value=(1 << 32) - 1)


@pytest.fixture(scope="module")
def anon():
    return PrefixPreservingAnonymizer(b"test-key")


class TestSharedPrefix:
    def test_known_cases(self):
        assert shared_prefix_bits(0, 0) == 32
        assert shared_prefix_bits(0, 1) == 31
        assert shared_prefix_bits(0, 1 << 31) == 0
        assert shared_prefix_bits(parse_ip("10.0.0.1"), parse_ip("10.0.0.200")) >= 24

    @given(ips, ips)
    @settings(max_examples=100)
    def test_symmetry_and_range(self, a, b):
        k = shared_prefix_bits(a, b)
        assert k == shared_prefix_bits(b, a)
        assert 0 <= k <= 32


class TestAnonymizer:
    def test_deterministic(self, anon):
        ip = parse_ip("128.210.7.33")
        assert anon.anonymize_ip(ip) == anon.anonymize_ip(ip)

    def test_key_matters(self):
        a = PrefixPreservingAnonymizer(b"k1")
        b = PrefixPreservingAnonymizer(b"k2")
        ip = parse_ip("128.210.7.33")
        assert a.anonymize_ip(ip) != b.anonymize_ip(ip)

    def test_changes_addresses(self, anon):
        samples = [parse_ip(f"128.210.{i}.{i}") for i in range(1, 30)]
        unchanged = sum(1 for ip in samples if anon.anonymize_ip(ip) == ip)
        assert unchanged <= 1

    @given(ips, ips)
    @settings(max_examples=60, deadline=None)
    def test_prefix_preservation_property(self, a, b):
        anon = PrefixPreservingAnonymizer(b"prop-key")
        assert shared_prefix_bits(a, b) == shared_prefix_bits(
            anon.anonymize_ip(a), anon.anonymize_ip(b)
        )

    @given(st.lists(ips, min_size=2, max_size=30, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_injective_on_samples(self, addresses):
        anon = PrefixPreservingAnonymizer(b"inj-key")
        mapped = [anon.anonymize_ip(ip) for ip in addresses]
        assert len(set(mapped)) == len(addresses)

    def test_verify_helper(self, anon):
        sample = [parse_ip(f"173.194.{i}.{j}") for i in (0, 1) for j in (1, 2, 100)]
        assert verify_prefix_preservation(anon, sample)

    def test_validation(self, anon):
        with pytest.raises(ValueError):
            PrefixPreservingAnonymizer(b"")
        with pytest.raises(ValueError):
            anon.anonymize_ip(-1)


class TestAnalysisSurvivesAnonymisation:
    def test_slash24_grouping_preserved(self, anon):
        a = parse_ip("173.194.5.10")
        b = parse_ip("173.194.5.200")
        c = parse_ip("173.194.6.10")
        ax, bx, cx = (anon.anonymize_ip(ip) for ip in (a, b, c))
        assert slash24_of(ax) == slash24_of(bx)
        assert slash24_of(ax) != slash24_of(cx)

    def test_session_analysis_identical(self, eu1_adsl):
        """Sessions, flow classes and per-subnet attribution are invariant
        under anonymisation (with a subnet plan mapped by the same key)."""
        from repro.core.flows import classify_flows
        from repro.core.sessions import build_sessions, flows_per_session_histogram

        anon = PrefixPreservingAnonymizer(b"study-key")
        records = eu1_adsl.dataset.records[:4000]
        anonymised = anon.anonymize_records(records)
        h1 = flows_per_session_histogram(build_sessions(records, 1.0))
        h2 = flows_per_session_histogram(build_sessions(anonymised, 1.0))
        assert h1 == h2
        assert classify_flows(records).control_fraction == classify_flows(
            anonymised
        ).control_fraction
