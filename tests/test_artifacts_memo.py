"""``@memoized_stage`` decorator tests."""

from __future__ import annotations

import pytest

from repro.artifacts.keys import CanonicalizationError
from repro.artifacts.memo import memoized_stage
from repro.artifacts.store import reset_default_store


@pytest.fixture
def cache_env(monkeypatch, tmp_path):
    """A live cache rooted in a fresh temp dir (conftest disables it)."""
    monkeypatch.setenv("REPRO_CACHE", "on")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    reset_default_store()
    yield tmp_path
    reset_default_store()


def make_stage(calls, stage="test/stage", ignore=()):
    @memoized_stage(stage, ignore=ignore)
    def compute(a, b=10, executor=None):
        calls.append((a, b))
        return {"sum": a + b}

    return compute


class TestMemoizedStage:
    def test_second_call_is_served_from_disk(self, cache_env):
        calls = []
        compute = make_stage(calls)
        assert compute(1, b=2) == {"sum": 3}
        assert compute(1, b=2) == {"sum": 3}
        assert calls == [(1, 2)]

    def test_positional_and_keyword_spellings_share_a_key(self, cache_env):
        calls = []
        compute = make_stage(calls)
        assert compute(1, 2) == compute(b=2, a=1)
        assert calls == [(1, 2)]

    def test_defaults_participate_in_the_key(self, cache_env):
        calls = []
        compute = make_stage(calls)
        assert compute(1) == compute(1, b=10)
        assert calls == [(1, 10)]

    def test_different_inputs_miss(self, cache_env):
        calls = []
        compute = make_stage(calls)
        compute(1)
        compute(2)
        assert calls == [(1, 10), (2, 10)]

    def test_ignored_params_do_not_split_the_key(self, cache_env):
        calls = []
        compute = make_stage(calls, ignore=("executor",))
        compute(1, executor="serial")
        compute(1, executor="process")
        assert calls == [(1, 10)]

    def test_unignored_uncanonicalisable_param_raises(self, cache_env):
        calls = []
        compute = make_stage(calls)
        with pytest.raises(CanonicalizationError):
            compute(1, executor=object())

    def test_unknown_ignore_name_rejected_at_decoration(self):
        with pytest.raises(ValueError):
            @memoized_stage("s", ignore=("nope",))
            def fn(a):
                return a

    def test_cache_key_does_no_work(self, cache_env):
        calls = []
        compute = make_stage(calls)
        key = compute.cache_key(1, b=2)
        assert len(key) == 64
        assert calls == []
        assert key == compute.cache_key(b=2, a=1)

    def test_stage_attribute_exposed(self, cache_env):
        assert make_stage([]).stage == "test/stage"

    def test_disabled_store_calls_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        reset_default_store()
        calls = []
        compute = make_stage(calls)
        compute(1)
        compute(1)
        assert calls == [(1, 10), (1, 10)]
        reset_default_store()

    def test_artifacts_land_in_the_configured_dir(self, cache_env):
        compute = make_stage([])
        compute(5)
        objects = list((cache_env / "objects").rglob("*.pkl"))
        assert len(objects) == 1
