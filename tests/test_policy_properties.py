"""Property-based invariants of the pluggable selection policies.

Randomised checks of the contracts the selection-policy testbed leans on:

- Every registered policy is seed-deterministic: the same ``(kind, seed)``
  replays the same decision sequence, and a full simulated week digests
  identically on the serial, thread and process backends.
- Go-With-The-Winner commits only to servers that actually answered the
  race (the fallback path is flagged, never silently committed).
- ISP traffic engineering conserves request volume: every query is
  steered to exactly one data center, and the steering weights are a
  probability distribution at any time.
- Routing-aware partitioning gives every resolver in a partition the
  same ranking (that is what "per address-space partition" means).

The whole module skips cleanly when hypothesis is not installed.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.cdn.datacenter import DataCenterDirectory, build_datacenter  # noqa: E402
from repro.cdn.policies import (  # noqa: E402
    GoWithTheWinnerPolicy,
    IspTrafficEngineeringPolicy,
    PartitionedRankingPolicy,
)
from repro.cdn.selection import (  # noqa: E402
    PolicyContext,
    make_policy,
    registered_policy_kinds,
)
from repro.exec.executor import ParallelExecutor  # noqa: E402
from repro.geo.cities import default_atlas  # noqa: E402
from repro.net.asn import GOOGLE_ASN  # noqa: E402
from repro.net.ip import Ipv4Allocator, parse_network  # noqa: E402
from repro.sim import driver  # noqa: E402


def _directory():
    atlas = default_atlas()
    alloc = Ipv4Allocator((parse_network("173.194.0.0/16"),))
    dcs = [
        build_datacenter("dc-a", atlas.get("Milan"), 10, alloc, GOOGLE_ASN),
        build_datacenter("dc-b", atlas.get("Zurich"), 20, alloc, GOOGLE_ASN),
        build_datacenter("dc-c", atlas.get("Paris"), 40, alloc, GOOGLE_ASN),
        build_datacenter("dc-d", atlas.get("London"), 15, alloc, GOOGLE_ASN),
    ]
    return DataCenterDirectory(dcs)


DIRECTORY = _directory()

RANKINGS = {
    "r1": ["dc-a", "dc-b", "dc-c", "dc-d"],
    "r2": ["dc-b", "dc-a", "dc-d", "dc-c"],
    "r3": ["dc-c", "dc-d", "dc-a", "dc-b"],
    "r4": ["dc-d", "dc-c", "dc-b", "dc-a"],
}

RTT_MS = {"dc-a": 12.0, "dc-b": 25.0, "dc-c": 48.0, "dc-d": 31.0}


def _context(seed):
    return PolicyContext(
        directory=DIRECTORY,
        rankings=RANKINGS,
        eligible=("dc-a", "dc-b", "dc-c", "dc-d"),
        rtt_ms=RTT_MS,
        seed=seed,
    )


resolvers = st.sampled_from(sorted(RANKINGS))
seeds = st.integers(min_value=0, max_value=2**31 - 1)
times = st.floats(min_value=0.0, max_value=7 * 86400.0,
                  allow_nan=False, allow_infinity=False)


class TestSeedDeterminism:
    @given(seed=seeds,
           kind=st.sampled_from(registered_policy_kinds()),
           queries=st.lists(st.tuples(resolvers, times), min_size=1,
                            max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_same_seed_replays_the_same_decisions(self, seed, kind, queries):
        # Time-ordered queries: GWTW session expiry assumes a clock that
        # never runs backwards (as in the simulator).
        queries = sorted(queries, key=lambda q: q[1])
        first = make_policy(kind, _context(seed))
        second = make_policy(kind, _context(seed))
        picks_a = [first.select_dc(r, t) for r, t in queries]
        picks_b = [second.select_dc(r, t) for r, t in queries]
        assert picks_a == picks_b

    @given(seed=seeds, kind=st.sampled_from(registered_policy_kinds()))
    @settings(max_examples=15, deadline=None)
    def test_preferred_now_consumes_no_randomness(self, seed, kind):
        """Ground-truth observation must not perturb the decision stream."""
        observed = make_policy(kind, _context(seed))
        silent = make_policy(kind, _context(seed))
        picks_a = []
        picks_b = []
        for step in range(30):
            t = step * 400.0
            # Interleave observations on one policy only.
            observed.preferred_now("r1", t)
            observed.preferred_now("r3", t)
            picks_a.append(observed.select_dc("r2", t))
            picks_b.append(silent.select_dc("r2", t))
        assert picks_a == picks_b

    @pytest.mark.parametrize("kind", registered_policy_kinds())
    def test_backends_agree_on_a_simulated_week(self, kind):
        """serial / thread / process runs digest identically per policy."""
        # The driver memoises runs in-process by (spec, scale, seed,
        # policy) — exactly what would make this test vacuous.  Empty the
        # memo before each backend so every backend really simulates, and
        # restore other modules' warm entries afterwards.
        saved = dict(driver._CACHE)
        try:
            digests = set()
            for backend in ("serial", "thread", "process"):
                driver.clear_cache()
                results = driver.run_all(
                    scale=0.004, seed=11, policy_kind=kind,
                    names=("EU1-FTTH", "EU1-Campus"),
                    executor=ParallelExecutor(backend, max_workers=2),
                )
                digests.add(tuple(
                    (name, results[name].dataset.content_digest())
                    for name in sorted(results)
                ))
            assert len(digests) == 1
        finally:
            driver._CACHE.clear()
            driver._CACHE.update(saved)


class TestGoWithTheWinner:
    @given(seed=seeds,
           race_size=st.integers(min_value=2, max_value=4),
           answer_probability=st.floats(min_value=0.05, max_value=1.0),
           queries=st.lists(st.tuples(resolvers, times), min_size=1,
                            max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_commits_only_to_answering_servers(self, seed, race_size,
                                               answer_probability, queries):
        policy = GoWithTheWinnerPolicy(
            DIRECTORY, RANKINGS, rtt_ms=RTT_MS, race_size=race_size,
            answer_probability=answer_probability, seed=seed,
        )
        queries = sorted(queries, key=lambda q: q[1])
        for resolver_id, t_s in queries:
            picked = policy.select_dc(resolver_id, t_s)
            race = policy.last_race
            if race is not None and race.t_s == t_s and \
                    race.resolver_id == resolver_id:
                if race.fallback:
                    # Nobody answered; the policy falls back openly.
                    assert race.answered == ()
                    assert race.winner == race.candidates[0]
                else:
                    assert race.winner in race.answered
                assert picked == race.winner
                assert picked in race.candidates

    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_commitment_is_sticky_within_the_session_ttl(self, seed):
        policy = GoWithTheWinnerPolicy(
            DIRECTORY, RANKINGS, rtt_ms=RTT_MS, session_ttl_s=300.0,
            seed=seed,
        )
        first = policy.select_dc("r1", 1000.0)
        assert policy.select_dc("r1", 1100.0) == first
        assert policy.select_dc("r1", 1299.0) == first
        assert policy.sticky_hits >= 2


class TestIspTrafficEngineering:
    @given(seed=seeds,
           queries=st.lists(st.tuples(resolvers, times), min_size=1,
                            max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_steering_conserves_request_volume(self, seed, queries):
        policy = IspTrafficEngineeringPolicy(
            DIRECTORY, RANKINGS, rtt_ms=RTT_MS, seed=seed,
        )
        for resolver_id, t_s in queries:
            dc = policy.select_dc(resolver_id, t_s)
            assert dc in RANKINGS[resolver_id]
        assert sum(policy.steered.values()) == len(queries)

    @given(seed=seeds, resolver_id=resolvers, t_s=times)
    @settings(max_examples=60, deadline=None)
    def test_steering_weights_are_a_distribution(self, seed, resolver_id,
                                                 t_s):
        policy = IspTrafficEngineeringPolicy(
            DIRECTORY, RANKINGS, rtt_ms=RTT_MS, seed=seed,
        )
        weights = policy.steering_weights(resolver_id, t_s)
        assert weights
        assert all(w > 0.0 for w in weights.values())
        assert sum(weights.values()) == pytest.approx(1.0)

    @given(seed=seeds, resolver_id=resolvers)
    @settings(max_examples=25, deadline=None)
    def test_congestion_shifts_weight_off_the_preferred_dc(self, seed,
                                                           resolver_id):
        policy = IspTrafficEngineeringPolicy(
            DIRECTORY, RANKINGS, rtt_ms=RTT_MS, seed=seed,
        )
        head = RANKINGS[resolver_id][0]
        early = dict(policy.steering_weights(resolver_id, 0.0))
        late = dict(policy.steering_weights(resolver_id, policy.shift_t_s))
        assert late[head] < early[head]


class TestPartitionedRanking:
    @given(seed=seeds, partition_size=st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_rankings_are_stable_within_a_partition(self, seed,
                                                    partition_size):
        policy = PartitionedRankingPolicy(
            DIRECTORY, RANKINGS, partition_size=partition_size, seed=seed,
        )
        by_partition = {}
        for resolver_id in RANKINGS:
            partition = policy.partition_of[resolver_id]
            ranking = tuple(policy.ranking_for(resolver_id))
            by_partition.setdefault(partition, set()).add(ranking)
        for partition, rankings in by_partition.items():
            assert len(rankings) == 1, (
                f"partition {partition} has divergent rankings: {rankings}"
            )

    @given(seed=seeds, partition_size=st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_merged_ranking_is_a_permutation_of_the_members(self, seed,
                                                            partition_size):
        policy = PartitionedRankingPolicy(
            DIRECTORY, RANKINGS, partition_size=partition_size, seed=seed,
        )
        for resolver_id, base in RANKINGS.items():
            assert sorted(policy.ranking_for(resolver_id)) == sorted(base)
