"""Cross-backend determinism: parallel runs are byte-identical to serial.

The executor's contract is that fan-out is a pure mechanical speedup —
every unit of work owns RNGs derived from its own ``(scenario, vantage)``
path, so serial, thread and process backends must produce *identical*
simulation results, down to the flow-log bytes.  These tests hold the three
wired hot paths (scenario fan-out, shared-world generation, RTT campaigns)
to that contract, and check that one poisoned vantage point cannot take
down its siblings' results.
"""

import dataclasses

import pytest

from repro.exec import BACKENDS, ExecutionError, ParallelExecutor
from repro.sim import driver
from repro.sim.driver import _scenario_task
from repro.sim.engine import run_many
from repro.sim.multistudy import build_shared_worlds, run_shared
from repro.sim.scenarios import PAPER_SCENARIOS, build_world
from repro.trace.records import WEEK_S

SCALE = 0.004
SEED = 23


def _snapshot(results):
    """Everything the acceptance criteria compare, hashable and exact."""
    return {
        name: (
            result.requests,
            tuple(sorted(result.cause_counts.items())),
            tuple(sorted(result.dns_dc_counts.items())),
            tuple(sorted(result.served_dc_counts.items())),
            tuple(result.startup_delay_samples),
            tuple(result.serving_rtt_samples),
            result.dataset.content_digest(),
        )
        for name, result in results.items()
    }


@pytest.fixture(scope="module")
def serial_snapshot():
    driver.clear_cache()
    try:
        results = driver.run_all(
            scale=SCALE, seed=SEED, executor=ParallelExecutor("serial")
        )
        yield _snapshot(results)
    finally:
        driver.clear_cache()


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_run_all_backends_byte_identical(backend, serial_snapshot):
    driver.clear_cache()
    results = driver.run_all(
        scale=SCALE, seed=SEED, executor=ParallelExecutor(backend, max_workers=2)
    )
    assert _snapshot(results) == serial_snapshot
    driver.clear_cache()


def test_run_all_hits_cache_after_parallel_run(serial_snapshot):
    driver.clear_cache()
    executor = ParallelExecutor("thread", max_workers=2)
    first = driver.run_all(scale=SCALE, seed=SEED, executor=executor)
    again = driver.run_all(scale=SCALE, seed=SEED, executor=executor)
    assert all(again[name] is first[name] for name in first)
    # Only the first call did any work.
    assert len(executor.timings) == len(first)
    driver.clear_cache()


@pytest.mark.parametrize("backend", BACKENDS)
def test_run_many_matches_run_requests(backend):
    names = ("EU1-FTTH", "EU1-Campus")
    worlds = [
        build_world(PAPER_SCENARIOS[name], scale=SCALE, seed=SEED)
        for name in names
    ]
    fanned = run_many(worlds, executor=ParallelExecutor(backend, max_workers=2))
    driver.clear_cache()
    serial = driver.run_all(scale=SCALE, seed=SEED, names=names,
                            executor=ParallelExecutor("serial"))
    assert _snapshot(dict(zip(names, fanned))) == _snapshot(serial)
    driver.clear_cache()


def test_run_many_rejects_shared_system():
    worlds = build_shared_worlds(scale=SCALE, seed=SEED,
                                 names=("EU1-FTTH", "EU1-Campus"))
    with pytest.raises(ValueError, match="independent worlds"):
        run_many(list(worlds.values()))


def test_shared_world_generation_backends_identical():
    snapshots = {}
    for backend in ("serial", "process"):
        worlds = build_shared_worlds(scale=SCALE, seed=SEED)
        results = run_shared(worlds,
                             executor=ParallelExecutor(backend, max_workers=2))
        snapshots[backend] = _snapshot(results)
    assert snapshots["serial"] == snapshots["process"]


def test_rtt_campaigns_backends_identical():
    from repro.core.pipeline import StudyPipeline

    driver.clear_cache()
    results = driver.run_all(scale=SCALE, seed=SEED,
                             names=("EU1-FTTH", "EU1-Campus"),
                             executor=ParallelExecutor("serial"))
    campaigns = {}
    for backend in BACKENDS:
        pipeline = StudyPipeline(
            results, landmark_count=25,
            executor=ParallelExecutor(backend, max_workers=2),
        )
        campaigns[backend] = pipeline.rtt_campaigns
    assert campaigns["serial"] == campaigns["thread"]
    assert campaigns["serial"] == campaigns["process"]
    assert all(campaigns["serial"].values())
    driver.clear_cache()


@pytest.mark.parametrize("backend", ["serial", "process"])
def test_poisoned_vantage_does_not_lose_the_others(backend):
    """One bad scenario surfaces as an ExecutionError; siblings survive."""
    good = ("EU1-FTTH", "EU1-Campus")
    poisoned = dataclasses.replace(
        PAPER_SCENARIOS["EU2"], client_block="not-a-network"
    )
    keys = [
        (PAPER_SCENARIOS[good[0]], SCALE, SEED, WEEK_S, "preferred"),
        (poisoned, SCALE, SEED, WEEK_S, "preferred"),
        (PAPER_SCENARIOS[good[1]], SCALE, SEED, WEEK_S, "preferred"),
    ]
    executor = ParallelExecutor(backend, max_workers=2)
    results = executor.map(
        _scenario_task, keys,
        labels=[good[0], "EU2-poisoned", good[1]],
        on_error="return",
    )
    error = results[1]
    assert isinstance(error, ExecutionError)
    assert error.label == "EU2-poisoned"
    assert "not-a-network" in error.worker_traceback
    driver.clear_cache()
    expected = driver.run_all(scale=SCALE, seed=SEED, names=good,
                              executor=ParallelExecutor("serial"))
    surviving = {good[0]: results[0], good[1]: results[2]}
    assert _snapshot(surviving) == _snapshot(expected)
    driver.clear_cache()
