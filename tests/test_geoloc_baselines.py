"""Tests for the geolocation baselines (geo database, reverse DNS) and probing."""

import pytest

from repro.geo.cities import default_atlas
from repro.geo.coords import GeoPoint, haversine_km
from repro.geoloc.geodb import GeoDatabase, build_reference_geodb
from repro.geoloc.probing import RttProber
from repro.geoloc.rdns import (
    ReverseDnsTable,
    build_reverse_dns,
    infer_city_from_hostname,
)
from repro.net.asn import AsRegistry, GOOGLE_ASN, YOUTUBE_EU_ASN
from repro.net.ip import parse_ip, parse_network
from repro.net.latency import AccessTechnology, LatencyModel, Site


class TestGeoDatabase:
    @pytest.fixture
    def registry(self):
        reg = AsRegistry()
        reg.register_as(GOOGLE_ASN, "Google Inc.")
        reg.register_as(YOUTUBE_EU_ASN, "YouTube-EU")
        reg.announce(parse_network("173.194.0.0/16"), GOOGLE_ASN)
        reg.announce(parse_network("208.65.152.0/22"), YOUTUBE_EU_ASN)
        return reg

    def test_corporate_space_pinned_to_hq(self, registry):
        db = build_reference_geodb(registry)
        city = db.lookup(parse_ip("173.194.8.9"))
        assert city is not None
        assert city.name == "Mountain View"
        city2 = db.lookup(parse_ip("208.65.153.1"))
        assert city2.name == "Mountain View"

    def test_uncovered_space(self, registry):
        db = build_reference_geodb(registry)
        assert db.lookup(parse_ip("8.8.4.4")) is None

    def test_longest_prefix_match(self):
        atlas = default_atlas()
        db = GeoDatabase()
        db.add(parse_network("10.0.0.0/8"), atlas.get("Chicago"))
        db.add(parse_network("10.1.0.0/16"), atlas.get("Milan"))
        assert db.lookup(parse_ip("10.1.2.3")).name == "Milan"
        assert db.lookup(parse_ip("10.2.2.3")).name == "Chicago"

    def test_len(self, registry):
        db = build_reference_geodb(registry)
        assert len(db) == 2

    def test_database_is_wrong_about_distance(self, registry):
        """The paper's point: the database puts EU servers 9000 km away."""
        db = build_reference_geodb(registry)
        claimed = db.lookup(parse_ip("173.194.100.1"))
        amsterdam = default_atlas().get("Amsterdam")
        assert haversine_km(claimed.point, amsterdam.point) > 8000

    def test_accurate_for_isp_space_wrong_for_corporate(self, registry, tiny_world):
        """Databases get access ISPs right and corporate internals wrong —
        the asymmetry the paper describes."""
        from repro.geoloc.geodb import add_isp_entries

        db = build_reference_geodb(registry)
        vantage = tiny_world.vantage
        added = add_isp_entries(
            db, [s.network for s in vantage.subnets], vantage.city
        )
        assert added == len(vantage.subnets)
        client_ip = next(iter(tiny_world.population)).ip
        claimed = db.lookup(client_ip)
        assert claimed is not None
        assert haversine_km(claimed.point, vantage.city.point) < 50.0
        # Meanwhile Google-space claims remain continental-scale wrong for
        # any server not actually at headquarters.
        milan_dc = tiny_world.system.directory.get("dc-milan")
        server_claim = db.lookup(milan_dc.servers[0].ip)
        assert haversine_km(server_claim.point, milan_dc.city.point) > 8000


class TestReverseDns:
    def test_empty_table_is_nxdomain(self):
        table = ReverseDnsTable()
        assert table.lookup(parse_ip("173.194.0.1")) is None

    def test_legacy_names_carry_airport_codes(self, tiny_world):
        legacy = [
            dc for dc in tiny_world.system.directory
            if dc.dc_id.startswith("legacy-")
        ]
        table = build_reverse_dns(legacy)
        assert len(table) == sum(dc.size for dc in legacy)
        sample_dc = legacy[0]
        hostname = table.lookup(sample_dc.servers[0].ip)
        assert hostname is not None
        city = infer_city_from_hostname(hostname)
        assert city is not None
        assert city.name == sample_dc.city.name

    def test_google_servers_have_no_ptr(self, tiny_world):
        legacy = [
            dc for dc in tiny_world.system.directory
            if dc.dc_id.startswith("legacy-")
        ]
        table = build_reverse_dns(legacy)
        google_dc = tiny_world.system.directory.get(tiny_world.google_dc_ids[0])
        assert table.lookup(google_dc.servers[0].ip) is None

    def test_infer_unknown_code(self):
        assert infer_city_from_hostname("v1.lscache-zzz.youtube.com") is None

    def test_infer_known_codes(self):
        assert infer_city_from_hostname("v9.lscache-ams.youtube.com").name == "Amsterdam"
        assert infer_city_from_hostname("cache.LHR.example.net").name == "London"


class TestProber:
    def test_min_filter_above_floor(self):
        latency = LatencyModel(seed=5)
        a = Site("a", GeoPoint(45.0, 7.0), AccessTechnology.CAMPUS)
        b = Site("b", GeoPoint(48.8, 2.3), AccessTechnology.DATACENTER)
        prober = RttProber(latency, probes=8, seed=1)
        floor = latency.min_rtt_ms(a, b)
        measured = prober.measure_ms(a, b)
        assert floor < measured < floor + 5.0

    def test_campaign_and_matrix(self):
        latency = LatencyModel(seed=6)
        a = Site("a", GeoPoint(45.0, 7.0), AccessTechnology.CAMPUS)
        targets = {
            "x": Site("x", GeoPoint(48.8, 2.3), AccessTechnology.DATACENTER),
            "y": Site("y", GeoPoint(52.4, 4.9), AccessTechnology.DATACENTER),
        }
        prober = RttProber(latency, probes=4, seed=2)
        campaign = prober.campaign(a, targets)
        assert set(campaign) == {"x", "y"}
        matrix = prober.matrix({"a": a}, targets)
        assert set(matrix) == {("a", "x"), ("a", "y")}
        assert prober.measurements == 4

    def test_probe_validation(self):
        with pytest.raises(ValueError):
            RttProber(LatencyModel(seed=0), probes=0)
