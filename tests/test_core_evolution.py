"""Tests for the epoch-comparison analysis."""

import pytest

from repro.core.evolution import compare_epochs
from repro.core.pipeline import StudyPipeline
from repro.core.preferred import DataCenterView, PreferredDcReport
from repro.geoloc.clustering import DataCenterCluster
from repro.geo.cities import default_atlas


def make_report(name, preferred_city, rtt, share=0.9):
    atlas = default_atlas()
    cluster = DataCenterCluster(
        cluster_id=f"cluster-{preferred_city.lower().replace(' ', '-')}",
        city=atlas.get(preferred_city),
        estimate=atlas.get(preferred_city).point,
        confidence_radius_km=40.0,
        server_ips=[1],
    )
    other = DataCenterCluster(
        cluster_id="cluster-other",
        city=atlas.get("Chicago"),
        estimate=atlas.get("Chicago").point,
        confidence_radius_km=40.0,
        server_ips=[2],
    )
    views = [
        DataCenterView(cluster=cluster, num_bytes=int(share * 1000),
                       num_flows=9, min_rtt_ms=rtt, distance_km=100.0),
        DataCenterView(cluster=other, num_bytes=int((1 - share) * 1000),
                       num_flows=1, min_rtt_ms=rtt + 50.0, distance_km=900.0),
    ]
    return PreferredDcReport(
        dataset_name=name, views=views,
        preferred_id=cluster.cluster_id, total_bytes=1000,
    )


class TestDiff:
    def test_unchanged(self):
        a = make_report("US-Campus", "Dallas", 27.0)
        b = make_report("US-Campus-Feb2011", "Dallas", 27.5)
        diff = compare_epochs(a, b)
        assert not diff.preferred_changed
        assert not diff.left_rtt_optimum
        assert "unchanged" in diff.render()

    def test_moved_away_from_optimum(self):
        a = make_report("US-Campus", "Dallas", 27.0)
        b = make_report("US-Campus-Feb2011", "Mountain View", 105.0)
        diff = compare_epochs(a, b)
        assert diff.preferred_changed
        assert diff.rtt_delta_ms == pytest.approx(78.0)
        assert diff.left_rtt_optimum
        assert "left the RTT optimum" in diff.render()

    def test_different_vantages_rejected(self):
        a = make_report("US-Campus", "Dallas", 27.0)
        b = make_report("EU2", "Madrid", 16.0)
        with pytest.raises(ValueError):
            compare_epochs(a, b)


class TestOnSimulatedEpochs:
    def test_sep2010_vs_feb2011(self):
        """The paper's longitudinal observation, end to end: two simulated
        collection windows, two pipeline runs, one diff."""
        from repro.sim.driver import run_scenario, run_spec
        from repro.sim.scenarios import february_2011_us_campus

        old_result = run_scenario("US-Campus", scale=0.008, seed=7)
        new_result = run_spec(february_2011_us_campus(), scale=0.008, seed=7)
        old_pipe = StudyPipeline({"US-Campus": old_result}, landmark_count=60)
        new_pipe = StudyPipeline(
            {"US-Campus-Feb2011": new_result}, landmark_count=60
        )
        diff = compare_epochs(
            old_pipe.preferred_reports["US-Campus"],
            new_pipe.preferred_reports["US-Campus-Feb2011"],
        )
        assert diff.preferred_changed
        assert diff.left_rtt_optimum
        assert diff.new_rtt_ms > 100.0
        assert diff.old_rtt_ms < 40.0
