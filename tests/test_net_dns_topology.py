"""Tests for DNS machinery and edge topology."""

import pytest

from repro.geo.cities import default_atlas
from repro.net.dns import Answer, AuthoritativeServer, LocalResolver
from repro.net.ip import parse_ip, parse_network
from repro.net.latency import AccessTechnology
from repro.net.topology import Subnet, VantagePoint


class StubMapper:
    """NameMapper returning a per-query incrementing address."""

    def __init__(self):
        self.calls = 0

    def map_name(self, hostname, resolver_id, now_s):
        self.calls += 1
        return Answer(ip=parse_ip("10.0.0.1") + self.calls, ttl_s=30.0)


@pytest.fixture
def resolver():
    return LocalResolver(
        resolver_id="test/net-1",
        authoritative=AuthoritativeServer(mapper=StubMapper()),
    )


class TestDns:
    def test_query_delegates_to_policy(self, resolver):
        answer = resolver.query("v1.lscache.youtube.sim", now_s=0.0)
        assert answer.ip == parse_ip("10.0.0.2")
        assert resolver.authoritative.queries == 1

    def test_no_cache_by_default(self, resolver):
        a1 = resolver.query("v1.lscache.youtube.sim", 0.0)
        a2 = resolver.query("v1.lscache.youtube.sim", 1.0)
        assert a1.ip != a2.ip
        assert resolver.misses == 2

    def test_cache_hit_within_ttl(self):
        resolver = LocalResolver(
            resolver_id="x",
            authoritative=AuthoritativeServer(mapper=StubMapper()),
            cache_enabled=True,
        )
        a1 = resolver.query("h", 0.0)
        a2 = resolver.query("h", 10.0)
        assert a1.ip == a2.ip
        assert resolver.hits == 1

    def test_cache_expires_after_ttl(self):
        resolver = LocalResolver(
            resolver_id="x",
            authoritative=AuthoritativeServer(mapper=StubMapper()),
            cache_enabled=True,
        )
        a1 = resolver.query("h", 0.0)
        a2 = resolver.query("h", 31.0)
        assert a1.ip != a2.ip

    def test_flush(self):
        resolver = LocalResolver(
            resolver_id="x",
            authoritative=AuthoritativeServer(mapper=StubMapper()),
            cache_enabled=True,
        )
        resolver.query("h", 0.0)
        assert resolver.cache_size == 1
        resolver.flush()
        assert resolver.cache_size == 0


def _vantage(shares=(0.6, 0.4)):
    atlas = default_atlas()
    auth = AuthoritativeServer(mapper=StubMapper())
    subnets = []
    for i, share in enumerate(shares):
        subnets.append(
            Subnet(
                name=f"Net-{i + 1}",
                network=parse_network(f"128.210.{i * 64}.0/18"),
                resolver=LocalResolver(resolver_id=f"vp/Net-{i + 1}", authoritative=auth),
                client_share=share,
            )
        )
    return VantagePoint(
        name="Test-VP",
        city=atlas.get("Turin"),
        access=AccessTechnology.CAMPUS,
        egress_ms=4.0,
        subnets=subnets,
        asn=137,
    )


class TestTopology:
    def test_subnet_shares_validated(self):
        with pytest.raises(ValueError):
            _vantage(shares=(0.6, 0.6))

    def test_subnet_share_bounds(self):
        auth = AuthoritativeServer(mapper=StubMapper())
        with pytest.raises(ValueError):
            Subnet(
                name="bad",
                network=parse_network("10.0.0.0/24"),
                resolver=LocalResolver(resolver_id="r", authoritative=auth),
                client_share=0.0,
            )

    def test_subnet_of(self):
        vp = _vantage()
        ip_in_first = parse_ip("128.210.0.5")
        ip_in_second = parse_ip("128.210.64.5")
        assert vp.subnet_of(ip_in_first).name == "Net-1"
        assert vp.subnet_of(ip_in_second).name == "Net-2"
        assert vp.subnet_of(parse_ip("1.2.3.4")) is None

    def test_resolver_for(self):
        vp = _vantage()
        resolver = vp.resolver_for(parse_ip("128.210.64.5"))
        assert resolver.resolver_id == "vp/Net-2"
        with pytest.raises(LookupError):
            vp.resolver_for(parse_ip("1.2.3.4"))

    def test_sites_share_routing_group(self):
        vp = _vantage()
        probe = vp.probe_site
        client = vp.client_site(parse_ip("128.210.0.5"))
        assert probe.routing_group == client.routing_group == "vp:Test-VP"
        assert probe.extra_ms == client.extra_ms == 4.0

    def test_subnet_names(self):
        assert _vantage().subnet_names() == ["Net-1", "Net-2"]
