"""Tests for content placement."""

import pytest

from repro.cdn.catalog import VideoCatalog
from repro.cdn.store import ContentPlacement

DC_IDS = [f"dc-{i}" for i in range(10)]


@pytest.fixture(scope="module")
def catalog():
    return VideoCatalog(size=2000, seed=1)


@pytest.fixture
def placement(catalog):
    return ContentPlacement(
        catalog, DC_IDS, replicated_mass=0.7, regional_presence_prob=0.5
    )


def tail_video(catalog, placement, offset=0):
    featured = {v.video_id for v in catalog.featured_videos}
    rank = len(catalog) - 1 - offset
    while catalog.by_rank(rank).video_id in featured:
        rank -= 1
    return catalog.by_rank(rank)


class TestResidency:
    def test_head_everywhere(self, catalog, placement):
        head = catalog.by_rank(0)
        assert all(placement.is_resident(dc, head) for dc in DC_IDS)
        assert placement.holders(head) == DC_IDS

    def test_featured_everywhere(self, catalog, placement):
        for video in catalog.featured_videos:
            assert all(placement.is_resident(dc, video) for dc in DC_IDS)

    def test_tail_has_origin(self, catalog, placement):
        video = tail_video(catalog, placement)
        holders = placement.holders(video)
        assert 1 <= len(holders) <= len(DC_IDS)
        origins = placement.origins(video)
        assert all(o in holders for o in origins)

    def test_tail_residency_deterministic(self, catalog):
        a = ContentPlacement(catalog, DC_IDS, regional_presence_prob=0.5)
        b = ContentPlacement(catalog, DC_IDS, regional_presence_prob=0.5)
        video = catalog.by_rank(len(catalog) - 3)
        assert a.holders(video) == b.holders(video)

    def test_regional_presence_scales(self, catalog):
        sparse = ContentPlacement(catalog, DC_IDS, regional_presence_prob=0.0)
        dense = ContentPlacement(catalog, DC_IDS, regional_presence_prob=0.9)
        total_sparse = 0
        total_dense = 0
        for rank in range(len(catalog) - 200, len(catalog)):
            video = catalog.by_rank(rank)
            total_sparse += len(sparse.holders(video))
            total_dense += len(dense.holders(video))
        assert total_dense > total_sparse * 3


class TestPullThrough:
    def test_pull_through_adds_holder(self, catalog, placement):
        video = tail_video(catalog, placement)
        missing = [dc for dc in DC_IDS if not placement.is_resident(dc, video)]
        if not missing:
            pytest.skip("random tail video happens to be everywhere")
        target = missing[0]
        placement.pull_through(target, video)
        assert placement.is_resident(target, video)
        assert placement.pull_throughs == 1

    def test_pull_through_idempotent(self, catalog, placement):
        video = tail_video(catalog, placement)
        placement.pull_through(DC_IDS[0], video)
        count = placement.pull_throughs
        placement.pull_through(DC_IDS[0], video)
        assert placement.pull_throughs == count

    def test_pull_through_head_noop(self, catalog, placement):
        placement.pull_through(DC_IDS[0], catalog.by_rank(0))
        assert placement.pull_throughs == 0

    def test_unknown_dc_rejected(self, catalog, placement):
        with pytest.raises(KeyError):
            placement.pull_through("dc-nope", catalog.by_rank(0))


class TestColdRegistration:
    def test_register_cold_resets_holders(self, catalog, placement):
        video = tail_video(catalog, placement)
        placement.pull_through(DC_IDS[0], video)
        origins = placement.register_cold(video)
        assert placement.holders(video) == origins
        assert set(origins) == set(placement.origins(video))

    def test_register_cold_head_rejected(self, catalog, placement):
        with pytest.raises(ValueError):
            placement.register_cold(catalog.by_rank(0))

    def test_residency_count(self, catalog, placement):
        video = tail_video(catalog, placement)
        placement.register_cold(video)
        assert placement.residency_count(video) == len(placement.origins(video))


class TestValidation:
    def test_needs_dcs(self, catalog):
        with pytest.raises(ValueError):
            ContentPlacement(catalog, [])

    def test_origin_count_validated(self, catalog):
        with pytest.raises(ValueError):
            ContentPlacement(catalog, DC_IDS, origin_count=0)

    def test_presence_prob_validated(self, catalog):
        with pytest.raises(ValueError):
            ContentPlacement(catalog, DC_IDS, regional_presence_prob=1.0)

    def test_head_ranks_exposed(self, placement):
        assert placement.head_ranks > 0
