"""Cross-process span propagation and the REPRO_TRACE=off contract.

Two guarantees are pinned here:

1. Per-task spans recorded inside executor workers — serial, thread or
   process backend — come back and nest under the dispatching
   ``exec/map`` span, with globally unique ids and merged metrics.
2. ``REPRO_TRACE=off`` is a true no-op: the study's dataset digests are
   byte-identical to the golden fixture (and to a traced run), because
   tracing never touches RNG state or artifact-cache keys.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.exec.executor import ParallelExecutor

pytestmark = []

BACKENDS = ("serial", "thread", "process")


def traced_square(x: int) -> int:
    """Module-level task (picklable) that records a span and a counter."""
    with obs.span("work", item=x):
        obs.inc("units", 1, stage="test")
    return x * x


@pytest.fixture(autouse=True)
def fresh_run():
    run = obs.new_run("prop-run")
    yield run
    obs.set_current_run(None)


@pytest.mark.parametrize("backend", BACKENDS)
def test_results_unchanged_by_tracing(backend):
    executor = ParallelExecutor(backend, max_workers=2)
    assert executor.map(traced_square, [1, 2, 3]) == [1, 4, 9]


@pytest.mark.parametrize("backend", BACKENDS)
def test_worker_spans_nest_under_map_span(backend, fresh_run):
    executor = ParallelExecutor(backend, max_workers=2)
    executor.map(traced_square, [1, 2, 3])
    records = fresh_run.tracer.records
    map_span = next(r for r in records if r.name == "exec/map")
    assert map_span.attrs["backend"] == backend
    assert map_span.attrs["tasks"] == 3

    task_spans = [r for r in records if r.name.startswith("task:")]
    assert len(task_spans) == 3
    for task in task_spans:
        assert task.parent_id == map_span.span_id
        assert task.span_id.startswith(f"{map_span.span_id}.t")
        # Task spans fall inside the map span's window (rebased times).
        assert task.t_start >= map_span.t_start - 1e-6
        assert task.t_end <= map_span.t_end + 1e-6

    work_spans = [r for r in records if r.name == "work"]
    assert len(work_spans) == 3
    task_ids = {t.span_id for t in task_spans}
    for work in work_spans:
        assert work.parent_id in task_ids


@pytest.mark.parametrize("backend", BACKENDS)
def test_span_ids_are_globally_unique(backend, fresh_run):
    executor = ParallelExecutor(backend, max_workers=2)
    executor.map(traced_square, [1, 2, 3, 4])
    ids = [r.span_id for r in fresh_run.tracer.records]
    assert len(ids) == len(set(ids))


@pytest.mark.parametrize("backend", BACKENDS)
def test_worker_metrics_merge_back(backend, fresh_run):
    executor = ParallelExecutor(backend, max_workers=2)
    executor.map(traced_square, [1, 2, 3])
    assert fresh_run.metrics.counter_total("units") == 3


@pytest.mark.parametrize("backend", BACKENDS)
def test_off_records_nothing(backend, fresh_run, monkeypatch):
    monkeypatch.setenv(obs.ENV_TRACE, "off")
    executor = ParallelExecutor(backend, max_workers=2)
    assert executor.map(traced_square, [1, 2, 3]) == [1, 4, 9]
    assert fresh_run.tracer.records == []
    assert fresh_run.metrics.snapshot()["counters"] == {}


def test_nested_maps_nest_spans(fresh_run):
    inner = ParallelExecutor("serial")

    def nested(x):
        return inner.map(traced_square, [x, x + 1])

    outer = ParallelExecutor("serial")
    outer.map(nested, [1, 3])
    names = [r.name for r in fresh_run.tracer.records]
    assert names.count("exec/map") == 3  # one outer + two inner
    assert names.count("work") == 4


class TestOffDigestIdentity:
    """REPRO_TRACE=off leaves study outputs byte-identical.

    The golden fixture (``tests/golden/study_scale_0.01.digests``) pins
    the traced-run digests; a fresh untraced run must reproduce them
    exactly.  The in-process memo cache is cleared first so the off-path
    really recomputes.
    """

    def test_digests_match_golden_with_tracing_off(self, monkeypatch):
        from repro.sim import driver
        from tests.test_golden_digests import GOLDEN, SCALE, SEED, golden_lines

        monkeypatch.setenv(obs.ENV_TRACE, "off")
        driver.clear_cache()
        try:
            results = driver.run_all(scale=SCALE, seed=SEED)
            digests = {
                name: result.dataset.content_digest()
                for name, result in results.items()
            }
        finally:
            driver.clear_cache()
        expected = {
            line.split()[1]: line.split()[2] for line in golden_lines()
        }
        assert digests == expected, (
            f"REPRO_TRACE=off changed study digests vs {GOLDEN}"
        )
