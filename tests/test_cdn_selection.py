"""Tests for the DNS-level selection policies."""

import pytest

from repro.cdn.datacenter import DataCenterDirectory, build_datacenter
from repro.cdn.selection import (
    PreferredDcPolicy,
    ProportionalPolicy,
    parse_shard,
)
from repro.geo.cities import default_atlas
from repro.net.asn import GOOGLE_ASN
from repro.net.ip import Ipv4Allocator, parse_network


@pytest.fixture
def directory():
    atlas = default_atlas()
    alloc = Ipv4Allocator((parse_network("173.194.0.0/16"),))
    dcs = [
        build_datacenter("dc-a", atlas.get("Milan"), 10, alloc, GOOGLE_ASN),
        build_datacenter("dc-b", atlas.get("Zurich"), 20, alloc, GOOGLE_ASN),
        build_datacenter("dc-c", atlas.get("Paris"), 40, alloc, GOOGLE_ASN),
    ]
    return DataCenterDirectory(dcs)


RANKINGS = {"r1": ["dc-a", "dc-b", "dc-c"], "r2": ["dc-b", "dc-a", "dc-c"]}


class TestParseShard:
    def test_valid(self):
        assert parse_shard("v17.lscache.youtube.sim") == 17

    @pytest.mark.parametrize("bad", ["lscache.x", "vx.y", "17.x", "v.y"])
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            parse_shard(bad)


class TestPreferredPolicy:
    def test_preferred_wins_without_pressure(self, directory):
        policy = PreferredDcPolicy(directory, RANKINGS, seed=1)
        for _ in range(50):
            assert policy.select_dc("r1", 0.0) == "dc-a"

    def test_per_resolver_rankings(self, directory):
        policy = PreferredDcPolicy(directory, RANKINGS, seed=1)
        assert policy.preferred_dc("r1") == "dc-a"
        assert policy.preferred_dc("r2") == "dc-b"

    def test_unknown_resolver_raises(self, directory):
        policy = PreferredDcPolicy(directory, RANKINGS, seed=1)
        with pytest.raises(KeyError):
            policy.select_dc("r3", 0.0)
        with pytest.raises(KeyError):
            policy.ranking_for("r3")

    def test_spill_probability(self, directory):
        policy = PreferredDcPolicy(directory, RANKINGS, spill_probability=0.3, seed=2)
        picks = [policy.select_dc("r1", 0.0) for _ in range(2000)]
        spill = sum(1 for p in picks if p != "dc-a") / len(picks)
        assert 0.2 < spill < 0.4
        # Spill lands on nearby alternates, mostly the second choice.
        assert picks.count("dc-b") > picks.count("dc-c")

    def test_capacity_spillover(self, directory):
        policy = PreferredDcPolicy(
            directory, RANKINGS, dns_capacity_per_hour={"dc-a": 10.0}, seed=3
        )
        picks = [policy.select_dc("r1", 100.0) for _ in range(50)]
        assert picks[:10] == ["dc-a"] * 10
        assert all(p == "dc-b" for p in picks[10:])

    def test_capacity_resets_each_hour(self, directory):
        policy = PreferredDcPolicy(
            directory, RANKINGS, dns_capacity_per_hour={"dc-a": 5.0}, seed=4
        )
        for _ in range(10):
            policy.select_dc("r1", 0.0)
        assert policy.select_dc("r1", 3700.0) == "dc-a"

    def test_cascading_capacity(self, directory):
        policy = PreferredDcPolicy(
            directory,
            RANKINGS,
            dns_capacity_per_hour={"dc-a": 2.0, "dc-b": 2.0},
            seed=5,
        )
        picks = [policy.select_dc("r1", 0.0) for _ in range(6)]
        assert picks == ["dc-a", "dc-a", "dc-b", "dc-b", "dc-c", "dc-c"]

    def test_map_name_returns_shard_server(self, directory):
        policy = PreferredDcPolicy(directory, RANKINGS, seed=6)
        answer = policy.map_name("v7.lscache.youtube.sim", "r1", 0.0)
        dc = directory.get("dc-a")
        assert answer.ip == dc.server_by_index(7 % dc.size).ip
        assert policy.assignments["dc-a"] == 1

    def test_validation(self, directory):
        with pytest.raises(ValueError):
            PreferredDcPolicy(directory, {})
        with pytest.raises(ValueError):
            PreferredDcPolicy(directory, {"r": ["dc-a"]})
        with pytest.raises(ValueError):
            PreferredDcPolicy(directory, RANKINGS, spill_probability=1.0)


class TestProportionalPolicy:
    def test_distribution_follows_size(self, directory):
        policy = ProportionalPolicy(directory, seed=1)
        picks = [policy.select_dc("anyone", 0.0) for _ in range(7000)]
        share_c = picks.count("dc-c") / len(picks)
        share_a = picks.count("dc-a") / len(picks)
        assert share_c == pytest.approx(40 / 70, abs=0.05)
        assert share_a == pytest.approx(10 / 70, abs=0.04)

    def test_ignores_resolver(self, directory):
        policy = ProportionalPolicy(directory, seed=2)
        assert policy.ranking_for("x") == policy.ranking_for("y")

    def test_ranking_by_size(self, directory):
        policy = ProportionalPolicy(directory, seed=3)
        assert policy.ranking_for("any") == ["dc-c", "dc-b", "dc-a"]

    def test_eligible_subset(self, directory):
        policy = ProportionalPolicy(directory, eligible=["dc-a", "dc-b"], seed=4)
        picks = {policy.select_dc("x", 0.0) for _ in range(200)}
        assert picks <= {"dc-a", "dc-b"}

    def test_empty_eligible_rejected(self, directory):
        with pytest.raises(ValueError):
            ProportionalPolicy(directory, eligible=[])
