"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_simulate_requires_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--out", "x.tsv"])

    def test_dataset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--dataset", "Mars", "--out", "x.tsv"]
            )


class TestSimulateAndSessions:
    def test_roundtrip(self, tmp_path):
        log = tmp_path / "flows.tsv"
        code, text = run_cli(
            "simulate", "--dataset", "EU1-FTTH", "--scale", "0.003",
            "--seed", "9", "--out", str(log),
        )
        assert code == 0
        assert "wrote" in text
        assert log.exists()

        code, text = run_cli("sessions", "--flows", str(log), "--gaps", "1,300")
        assert code == 0
        assert "T=   1.0s" in text
        assert "T= 300.0s" in text

    def test_sessions_empty_log(self, tmp_path):
        log = tmp_path / "empty.tsv"
        log.write_text("#src\n")
        code, text = run_cli("sessions", "--flows", str(log))
        assert code == 1

    def test_simulate_proportional_policy(self, tmp_path):
        log = tmp_path / "old.tsv"
        code, _ = run_cli(
            "simulate", "--dataset", "EU1-FTTH", "--scale", "0.003",
            "--policy", "proportional", "--out", str(log),
        )
        assert code == 0


class TestAnonymize:
    def test_anonymize_roundtrip(self, tmp_path):
        log = tmp_path / "flows.tsv"
        code, _ = run_cli(
            "simulate", "--dataset", "EU1-FTTH", "--scale", "0.003",
            "--seed", "9", "--out", str(log),
        )
        assert code == 0
        out_log = tmp_path / "anon.tsv"
        code, text = run_cli(
            "anonymize", "--flows", str(log), "--out", str(out_log),
            "--key", "secret",
        )
        assert code == 0
        assert "anonymised" in text
        from repro.trace import read_flow_log

        original = read_flow_log(log)
        anonymised = read_flow_log(out_log)
        assert len(original) == len(anonymised)
        assert {r.src_ip for r in original} != {r.src_ip for r in anonymised}
        # Metrics untouched.
        assert [r.num_bytes for r in original] == [r.num_bytes for r in anonymised]


class TestComposite:
    def test_study_summary(self):
        code, text = run_cli("study", "--scale", "0.004", "--landmarks", "40")
        assert code == 0
        assert "TABLE I" in text and "TABLE III" in text
        assert "preferred=" in text

    def test_study_full_report(self):
        code, text = run_cli(
            "study", "--scale", "0.004", "--landmarks", "40", "--full"
        )
        assert code == 0
        assert "FULL REPORT" in text
        assert "Hot spots and cold content" in text

    def test_study_with_validation(self):
        code, text = run_cli(
            "study", "--scale", "0.004", "--landmarks", "40", "--validate"
        )
        assert code == 0
        assert "METHODOLOGY VALIDATION" in text

    def test_coldvideo(self):
        code, text = run_cli("coldvideo", "--nodes", "12", "--samples", "4",
                             "--seed", "5")
        assert code == 0
        assert "ratio>1.2" in text

    def test_sweep(self):
        code, text = run_cli(
            "sweep", "--dataset", "EU1-FTTH",
            "--parameter", "spill_probability",
            "--values", "0.0,0.1",
            "--metrics", "preferred_share",
            "--scale", "0.004",
        )
        assert code == 0
        lines = [l for l in text.splitlines() if l.strip()]
        assert len(lines) == 3  # header + two grid points
        first = float(lines[1].split()[-1])
        second = float(lines[2].split()[-1])
        assert first > second  # spill lowers the preferred share

    def test_sweep_bad_parameter(self):
        with pytest.raises(ValueError):
            run_cli(
                "sweep", "--dataset", "EU1-FTTH",
                "--parameter", "warp_factor", "--values", "1",
            )

    def test_whatif_named_variants(self):
        code, text = run_cli(
            "whatif", "--dataset", "EU1-FTTH", "--scale", "0.004",
            "--variants", "old-policy",
        )
        assert code == 0
        assert "baseline" in text
        assert "old-policy" in text


class TestGridCommand:
    def test_plan_lists_points_and_warmth(self):
        code, text = run_cli(
            "grid", "plan", "--base", "EU1-FTTH",
            "--axis", "policy=preferred,geographic",
            "--axis", "zipf_alpha=0.8,1.0",
            "--filter", "policy=geographic,zipf_alpha=1.0",
            "--scale", "0.004",
        )
        assert code == 0
        assert "points=3" in text
        assert "policy=geographic,zipf_alpha=1.0" not in text
        assert text.count("cold") == 4  # the header count + three points

    def test_plan_json_and_out_round_trip(self, tmp_path):
        import json

        grid_file = tmp_path / "grid.json"
        code, text = run_cli(
            "grid", "plan", "--base", "EU2",
            "--axis", "policy=preferred,proportional",
            "--out", str(grid_file), "--json",
        )
        assert code == 0
        document = json.loads(text)
        assert document["base"] == "EU2"
        assert [p["label"] for p in document["points"]] == [
            "policy=preferred", "policy=proportional",
        ]
        # The written grid file reloads into the identical plan.
        code, text = run_cli("grid", "plan", "--grid", str(grid_file), "--json")
        assert code == 0
        assert json.loads(text) == document

    def test_run_prints_metric_table(self):
        code, text = run_cli(
            "grid", "run", "--base", "EU1-FTTH",
            "--axis", "spill_probability=0.0,0.1",
            "--metrics", "preferred_share",
            "--scale", "0.004",
        )
        assert code == 0
        lines = [l for l in text.splitlines() if l.strip()]
        assert lines[0].split() == ["point", "preferred_share"]
        assert lines[-1].startswith("grid: 2 points")
        first = float(lines[1].split()[-1])
        second = float(lines[2].split()[-1])
        assert first > second  # spill lowers the preferred share

    def test_diff_reports_added_points(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        run_cli("grid", "plan", "--base", "EU1-FTTH",
                "--axis", "policy=preferred", "--out", str(a), "--scale", "0.004")
        run_cli("grid", "plan", "--base", "EU1-FTTH",
                "--axis", "policy=preferred,geographic", "--out", str(b),
                "--scale", "0.004")
        code, text = run_cli("grid", "diff", str(a), str(b))
        assert code == 0
        assert "added policy=geographic" in text
        assert "common 1 points" in text

    def test_unknown_base_exits_2(self, capsys):
        code, text = run_cli("grid", "plan", "--base", "Mars",
                             "--axis", "policy=preferred")
        assert code == 2
        assert "Mars" in capsys.readouterr().err

    def test_bad_axis_clause_exits_2(self, capsys):
        code, _ = run_cli("grid", "plan", "--axis", "policy")
        assert code == 2
        assert "NAME=V1,V2" in capsys.readouterr().err

    def test_grid_file_conflicts_with_inline_shape(self, tmp_path, capsys):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text('{"base": "EU2", "axes": []}')
        code, _ = run_cli("grid", "plan", "--grid", str(grid_file),
                          "--axis", "policy=preferred")
        assert code == 2
        assert "--grid" in capsys.readouterr().err


class TestStudyStreamGating:
    @pytest.mark.parametrize("flags,expected", [
        (["--full"], "repro study --full"),
        (["--shared"], "repro study --shared"),
        (["--validate"], "repro study --validate"),
        (["--full", "--validate"], "repro study --full --validate"),
    ])
    def test_stream_rejects_batch_only_flags(self, flags, expected, capsys):
        code, text = run_cli("study", "--stream", "--scale", "0.004", *flags)
        assert code == 2
        assert text == ""  # the error goes to stderr, not the report stream
        error = capsys.readouterr().err
        for flag in flags:
            assert flag in error
        assert expected in error  # names the exact batch equivalent
