"""Tests for the assembled CDN's request handling."""

import random

import pytest

from repro.cdn.catalog import Resolution
from repro.cdn.cluster import KIND_CONTROL, KIND_VIDEO
from repro.core.flows import CONTROL_FLOW_THRESHOLD_BYTES


@pytest.fixture
def request_env(tiny_world):
    world = tiny_world
    client = next(iter(world.population))
    site = world.vantage.client_site(client.ip)
    resolver = world.vantage.resolver_for(client.ip)
    return world, client, site, resolver


def handle(world, client, site, resolver, video, t=1000.0, rng_seed=0, **kw):
    rng = random.Random(rng_seed)
    return world.system.handle_request(
        client_ip=client.ip,
        client_site=site,
        resolver=resolver,
        video=video,
        resolution=Resolution.R360,
        t_s=t,
        rng=rng,
        **kw,
    )


class TestHandleRequest:
    def test_ends_with_video_flow(self, request_env):
        world, client, site, resolver = request_env
        video = world.system.catalog.by_rank(0)
        outcome = handle(world, client, site, resolver, video)
        main = [e for e in outcome.events if e.kind in (KIND_CONTROL, KIND_VIDEO)]
        assert main[-1].kind == KIND_VIDEO
        assert all(e.kind == KIND_CONTROL for e in main[:-1])

    def test_control_flows_below_threshold(self, request_env):
        world, client, site, resolver = request_env
        video = world.system.catalog.by_rank(0)
        for seed in range(20):
            outcome = handle(world, client, site, resolver, video, rng_seed=seed)
            for event in outcome.events:
                if event.kind == KIND_CONTROL:
                    assert event.num_bytes < CONTROL_FLOW_THRESHOLD_BYTES
                else:
                    assert event.num_bytes >= CONTROL_FLOW_THRESHOLD_BYTES

    def test_session_gap_below_one_second(self, request_env):
        world, client, site, resolver = request_env
        video = world.system.catalog.by_rank(0)
        for seed in range(30):
            outcome = handle(world, client, site, resolver, video, rng_seed=seed)
            main = [e for e in outcome.events if e.kind in (KIND_CONTROL, KIND_VIDEO)]
            for first, second in zip(main, main[1:]):
                assert second.t_start - first.t_end < 1.0
                assert second.t_start > first.t_start

    def test_video_id_propagates(self, request_env):
        world, client, site, resolver = request_env
        video = world.system.catalog.by_rank(3)
        outcome = handle(world, client, site, resolver, video)
        main = [e for e in outcome.events if e.kind in (KIND_CONTROL, KIND_VIDEO)]
        assert all(e.video_id == video.video_id for e in main)

    def test_watch_fraction_override(self, request_env):
        world, client, site, resolver = request_env
        video = world.system.catalog.by_rank(0)
        full = handle(world, client, site, resolver, video, watch_fraction=1.0)
        tiny = handle(world, client, site, resolver, video, watch_fraction=0.05)
        full_bytes = [e for e in full.events if e.kind == KIND_VIDEO][0].num_bytes
        tiny_bytes = [e for e in tiny.events if e.kind == KIND_VIDEO][0].num_bytes
        assert full_bytes > tiny_bytes

    def test_served_dc_matches_decision(self, request_env):
        world, client, site, resolver = request_env
        video = world.system.catalog.by_rank(0)
        outcome = handle(world, client, site, resolver, video)
        assert outcome.served_dc_id == outcome.decision.serving_server.dc_id
        assert outcome.dns_dc_id in world.google_dc_ids

    def test_dns_lands_on_preferred_mostly(self, request_env):
        world, client, site, resolver = request_env
        ranking = world.system.policy.ranking_for(resolver.resolver_id)
        video = world.system.catalog.by_rank(0)
        hits = 0
        for seed in range(40):
            outcome = handle(world, client, site, resolver, video, rng_seed=seed)
            if outcome.dns_dc_id == ranking[0]:
                hits += 1
        assert hits >= 30

    def test_flow_timestamps_positive_duration(self, request_env):
        world, client, site, resolver = request_env
        video = world.system.catalog.by_rank(1)
        outcome = handle(world, client, site, resolver, video)
        for event in outcome.events:
            assert event.t_end > event.t_start


class TestAssetFlows:
    def test_legacy_assets_appear(self, tiny_world):
        world = tiny_world
        client = next(iter(world.population))
        site = world.vantage.client_site(client.ip)
        resolver = world.vantage.resolver_for(client.ip)
        video = world.system.catalog.by_rank(0)
        rng = random.Random(0)
        asset_events = []
        for _ in range(300):
            outcome = world.system.handle_request(
                client_ip=client.ip, client_site=site, resolver=resolver,
                video=video, resolution=Resolution.R360, t_s=0.0, rng=rng,
            )
            asset_events.extend(e for e in outcome.events if e.kind == "asset")
        # legacy_probability + third_party_probability per request.
        assert len(asset_events) > 3
        # Asset servers are outside the ranked data centers.
        ranked_servers = {
            s.ip for dc_id in world.google_dc_ids
            for s in world.system.directory.get(dc_id).servers
        }
        assert all(e.server_ip not in ranked_servers for e in asset_events)
