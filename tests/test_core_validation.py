"""Tests for the methodology-validation module.

These quantify the reproduction's central credibility claim: the paper's
measurement techniques, run blind on the traces, recover the simulator's
ground truth.
"""

import pytest

from repro.core.validation import render_validation, validate_study


@pytest.fixture(scope="module")
def validation(pipeline, study_results):
    return validate_study(pipeline, study_results)


class TestValidation:
    def test_all_datasets_validated(self, validation, study_results):
        assert set(validation) == set(study_results)

    def test_preferred_dc_inference_correct(self, validation):
        """CBG + clustering + byte ranking lands on the true preferred data
        center at every vantage point."""
        for name, row in validation.items():
            assert row.preferred_matches, (
                f"{name}: inferred {row.inferred_preferred_cluster}, "
                f"true {row.true_preferred_dc}"
            )

    def test_nonpreferred_fraction_error_small(self, validation):
        """The Figure 9 number is recovered within a few points.

        The residual comes from known sources: the analysis counts *video
        flows* while the truth counts *requests* (redirect chains weight a
        request once), and the monitor drops ~0.2 % of flows.
        """
        for name, row in validation.items():
            assert row.nonpreferred_error < 0.06, (
                name, row.inferred_nonpreferred_fraction,
                row.true_nonpreferred_fraction,
            )

    def test_directionally_identical(self, validation):
        """Both views agree on which networks are the outliers."""
        inferred = {n: r.inferred_nonpreferred_fraction for n, r in validation.items()}
        true = {n: r.true_nonpreferred_fraction for n, r in validation.items()}
        assert max(inferred, key=inferred.get) == max(true, key=true.get) == "EU2"

    def test_render(self, validation):
        text = render_validation(validation)
        assert "METHODOLOGY VALIDATION" in text
        assert "MATCH" in text
        assert "MISMATCH" not in text
