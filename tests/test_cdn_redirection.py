"""Tests for the application-layer redirection engine."""

import pytest

from repro.cdn.catalog import VideoCatalog, shard_of
from repro.cdn.datacenter import DataCenterDirectory, build_datacenter
from repro.cdn.redirection import (
    CAUSE_MISS,
    CAUSE_OVERLOAD_INTER,
    CAUSE_OVERLOAD_INTRA,
    CAUSE_REBALANCE,
    MAX_HOPS,
    RedirectionEngine,
)
from repro.cdn.store import ContentPlacement
from repro.geo.cities import default_atlas
from repro.net.asn import GOOGLE_ASN
from repro.net.ip import Ipv4Allocator, parse_network

DC_CITIES = ["Milan", "Zurich", "Paris", "Chicago"]


@pytest.fixture
def world():
    atlas = default_atlas()
    alloc = Ipv4Allocator((parse_network("173.194.0.0/16"),))
    dcs = [
        build_datacenter(
            f"dc-{c.lower()}", atlas.get(c), 12, alloc, GOOGLE_ASN,
            server_capacity_per_hour=5.0,
        )
        for c in DC_CITIES
    ]
    directory = DataCenterDirectory(dcs)
    catalog = VideoCatalog(size=500, seed=2)
    placement = ContentPlacement(
        catalog, [dc.dc_id for dc in dcs],
        replicated_mass=0.7, regional_presence_prob=0.0,
    )
    return directory, catalog, placement


RANKING = ["dc-milan", "dc-zurich", "dc-paris", "dc-chicago"]


def make_engine(world, rebalance=0.0, origin_fetch=0.0, seed=1):
    directory, catalog, placement = world
    return RedirectionEngine(
        directory, placement,
        rebalance_probability=rebalance,
        origin_fetch_probability=origin_fetch,
        seed=seed,
    )


def tail_video(catalog, placement, resident_excluded):
    featured = {v.video_id for v in catalog.featured_videos}
    for rank in range(len(catalog) - 1, 0, -1):
        video = catalog.by_rank(rank)
        if video.video_id in featured:
            continue
        if not placement.is_resident(resident_excluded, video):
            return video
    raise AssertionError("no suitable tail video")


class TestDirectServe:
    def test_head_video_served_directly(self, world):
        directory, catalog, placement = world
        engine = make_engine(world)
        server = directory.get("dc-milan").servers[0]
        decision = engine.route(server, catalog.by_rank(0), RANKING, 0.0)
        assert decision.hops == [server]
        assert not decision.redirected
        assert decision.causes == []

    def test_serve_recorded_in_load(self, world):
        directory, catalog, placement = world
        engine = make_engine(world)
        server = directory.get("dc-milan").servers[0]
        engine.route(server, catalog.by_rank(0), RANKING, 10.0)
        assert engine.server_load(server.ip, 10.0) == 1.0
        # A new hour starts a fresh counter.
        assert engine.server_load(server.ip, 3700.0) == 0.0


class TestMiss:
    def test_miss_redirects_to_holder(self, world):
        directory, catalog, placement = world
        engine = make_engine(world)
        video = tail_video(catalog, placement, "dc-milan")
        server = directory.get("dc-milan").servers[0]
        decision = engine.route(server, video, RANKING, 0.0)
        assert decision.redirected
        assert decision.causes[0] == CAUSE_MISS
        holder_dc = decision.serving_server.dc_id
        assert holder_dc != "dc-milan"
        assert engine.miss_redirects == 1

    def test_miss_pulls_through(self, world):
        directory, catalog, placement = world
        engine = make_engine(world)
        video = tail_video(catalog, placement, "dc-milan")
        server = directory.get("dc-milan").servers[0]
        engine.route(server, video, RANKING, 0.0)
        # Second request is served locally.
        decision = engine.route(server, video, RANKING, 60.0)
        assert not decision.redirected

    def test_origin_fetch_goes_to_origin(self, world):
        directory, catalog, placement = world
        engine = make_engine(world, origin_fetch=1.0)
        video = tail_video(catalog, placement, "dc-milan")
        origins = set(placement.origins(video))
        server = directory.get("dc-milan").servers[0]
        decision = engine.route(server, video, RANKING, 0.0)
        assert decision.serving_server.dc_id in origins


class TestOverload:
    def test_overflow_to_next_dc_shard_server(self, world):
        directory, catalog, placement = world
        engine = make_engine(world)  # intra_shed_fraction default 0.25
        video = catalog.by_rank(0)
        shard = shard_of(video.video_id)
        milan = directory.get("dc-milan")
        server = milan.server_by_index(shard % milan.size)
        decisions = [engine.route(server, video, RANKING, 0.0, shard=shard) for _ in range(30)]
        overflowed = [d for d in decisions if d.redirected]
        assert overflowed, "capacity 5/h must trigger redirects"
        inter = [d for d in overflowed if d.causes[0] == CAUSE_OVERLOAD_INTER]
        assert inter, "most overflow crosses to another data center"
        zurich = directory.get("dc-zurich")
        expected = zurich.server_by_index(shard % zurich.size)
        assert any(d.hops[1].ip == expected.ip for d in inter)

    def test_intra_shed_fraction_one_stays_local(self, world):
        directory, catalog, placement = world
        _, _, placement = world
        engine = RedirectionEngine(
            directory, placement, rebalance_probability=0.0,
            intra_shed_fraction=1.0, origin_fetch_probability=0.0, seed=3,
        )
        video = catalog.by_rank(0)
        server = directory.get("dc-milan").servers[0]
        for _ in range(30):
            decision = engine.route(server, video, RANKING, 0.0)
            assert decision.serving_server.dc_id == "dc-milan"

    def test_chain_bounded(self, world):
        directory, catalog, placement = world
        engine = make_engine(world, rebalance=0.0)
        video = catalog.by_rank(1)
        server = directory.get("dc-milan").servers[0]
        for _ in range(500):
            decision = engine.route(server, video, RANKING, 0.0)
            assert len(decision.hops) <= MAX_HOPS


class TestRebalance:
    def test_rebalance_stays_in_dc(self, world):
        directory, catalog, placement = world
        engine = make_engine(world, rebalance=0.999, seed=4)
        video = catalog.by_rank(0)
        server = directory.get("dc-milan").servers[0]
        decision = engine.route(server, video, RANKING, 0.0)
        assert decision.causes == [CAUSE_REBALANCE]
        assert decision.serving_server.dc_id == "dc-milan"
        assert decision.serving_server.ip != server.ip

    def test_rebalance_counter(self, world):
        engine = make_engine(world, rebalance=0.999, seed=5)
        directory, catalog, _ = world
        server = directory.get("dc-milan").servers[0]
        engine.route(server, catalog.by_rank(0), RANKING, 0.0)
        assert engine.rebalances == 1


class TestValidation:
    def test_probability_bounds(self, world):
        directory, _, placement = world
        with pytest.raises(ValueError):
            RedirectionEngine(directory, placement, rebalance_probability=1.0)
        with pytest.raises(ValueError):
            RedirectionEngine(directory, placement, intra_shed_fraction=1.5)
        with pytest.raises(ValueError):
            RedirectionEngine(directory, placement, origin_fetch_probability=-0.1)
