"""Unit tests for the declarative scenario-spec subsystem.

Covers the ScenarioInfo normalisation contract, Spec validation and
algebra (compose/diff/apply), serialisation codecs (JSON and gated
TOML), the named-spec registry, grid enumeration/filters, and the
grid runner's warm/cold planning.  Property-based counterparts live in
``test_spec_properties.py``.
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys

import pytest

from repro.artifacts.store import reset_default_store
from repro.sim import driver
from repro.sim.scenarios import GOOGLE_DC_PLAN, PAPER_SCENARIOS, build_world
from repro.spec import (
    BARE_BASE,
    EMPTY_INFO,
    EMPTY_SPEC,
    GridAxis,
    GridPoint,
    GridSpec,
    ScenarioInfo,
    Spec,
    SpecError,
    apply_spec,
    apply_to_scenario,
    describe,
    diff,
    diff_grids,
    enumerate_points,
    load_grid,
    load_spec,
    named_spec,
    par_delta,
    plan_grid,
    register_spec,
    run_grid,
    scenario_spec,
    spec_names,
    unregister_spec,
)


class TestScenarioInfo:
    def test_normalises_order_and_duplicates(self):
        a = ScenarioInfo(
            sets={"detour": [("dc-b", 2.0), ("dc-a", 1.0), ("dc-b", 2.0)]},
            pars={"beta": 2, "alpha": 1},
        )
        b = ScenarioInfo(
            sets={"detour": [("dc-a", 1.0), ("dc-b", 2.0)]},
            pars={"alpha": 1, "beta": 2},
        )
        assert a == b
        assert a.cache_fingerprint() == b.cache_fingerprint()

    def test_empty_sets_are_dropped(self):
        info = ScenarioInfo(sets={"detour": []}, pars={})
        assert info.is_empty
        assert info == EMPTY_INFO

    def test_set_accessor_absent_is_empty(self):
        assert ScenarioInfo().set("detour") == ()

    def test_rejects_non_scalar_pars(self):
        with pytest.raises(SpecError):
            ScenarioInfo(pars={"bad": [1, 2]})

    def test_rejects_non_sequence_elements(self):
        with pytest.raises(SpecError):
            ScenarioInfo(sets={"detour": [object()]})

    def test_merge_unions_sets_and_overrides_pars(self):
        a = ScenarioInfo(sets={"detour": [("dc-a", 1.0)]}, pars={"x": 1})
        b = ScenarioInfo(sets={"detour": [("dc-b", 2.0)]}, pars={"x": 2})
        merged = a.merge(b)
        assert merged.set("detour") == (("dc-a", 1.0), ("dc-b", 2.0))
        assert merged.pars_dict == {"x": 2}

    def test_without_elements_and_pars(self):
        info = ScenarioInfo(
            sets={"detour": [("dc-a", 1.0), ("dc-b", 2.0)]}, pars={"x": 1, "y": 2}
        )
        pruned = info.without_elements(
            ScenarioInfo(sets={"detour": [("dc-a", 1.0)]})
        )
        assert pruned.set("detour") == (("dc-b", 2.0),)
        assert pruned.pars_dict == {"x": 1, "y": 2}
        assert info.without_pars(["x"]).pars_dict == {"y": 2}

    def test_json_round_trip(self):
        info = ScenarioInfo(
            sets={"subnet": [("Net-1", 0.5, True)]}, pars={"zipf_alpha": 0.9}
        )
        assert ScenarioInfo.from_json_dict(info.to_json_dict()) == info

    def test_from_json_rejects_unknown_keys(self):
        with pytest.raises(SpecError):
            ScenarioInfo.from_json_dict({"stes": {}})

    def test_describe_round_trips_through_diff(self):
        us = PAPER_SCENARIOS["US-Campus"]
        eu2 = PAPER_SCENARIOS["EU2"]
        delta = diff(us, eu2)
        rebuilt, policy = apply_to_scenario(us, delta)
        assert rebuilt == dataclasses.replace(eu2)
        assert policy == "preferred"

    def test_describe_rejects_non_scenarios(self):
        with pytest.raises(SpecError):
            describe({"name": "nope"})


class TestSpecValidation:
    def test_unknown_set_name_rejected(self):
        with pytest.raises(SpecError):
            Spec(add=ScenarioInfo(sets={"cluster": [("a", 1)]}))

    def test_wrong_arity_rejected(self):
        with pytest.raises(SpecError):
            Spec(add=ScenarioInfo(sets={"detour": [("dc-a", 1.0, 3.0)]}))

    def test_remove_pars_rejected(self):
        with pytest.raises(SpecError):
            Spec(remove=ScenarioInfo(pars={"zipf_alpha": 0.9}))

    def test_unknown_par_rejected(self):
        with pytest.raises(SpecError):
            par_delta(warp_factor=9)

    def test_set_backed_field_not_assignable_as_par(self):
        with pytest.raises(SpecError):
            par_delta(subnets=("Net-1",))

    def test_policy_par_validated(self):
        with pytest.raises(SpecError):
            par_delta(policy="nearest")
        assert par_delta(policy="geographic").add.pars_dict["policy"] == "geographic"

    def test_par_type_coercion_rejects_mismatches(self):
        with pytest.raises(SpecError):
            par_delta(num_clients="many")
        with pytest.raises(SpecError):
            par_delta(residential=1)
        with pytest.raises(SpecError):
            par_delta(zipf_alpha="steep")

    def test_empty_spec_is_identity_flagged(self):
        assert EMPTY_SPEC.is_empty
        assert not par_delta(zipf_alpha=0.9).is_empty


class TestCompose:
    def test_add_then_remove_cancels(self):
        a = Spec(add=ScenarioInfo(sets={"detour": [("dc-a", 1.0)]}))
        b = Spec(remove=ScenarioInfo(sets={"detour": [("dc-a", 1.0)]}))
        composed = a.compose(b)
        assert composed.add.is_empty
        assert composed.remove.is_empty

    def test_later_par_wins(self):
        composed = par_delta(zipf_alpha=0.7).compose(par_delta(zipf_alpha=0.9))
        assert composed.add.pars_dict == {"zipf_alpha": 0.9}

    def test_requires_discharged_by_first_add(self):
        a = par_delta(zipf_alpha=0.9)
        b = Spec(require=ScenarioInfo(pars={"zipf_alpha": 0.9}))
        assert a.compose(b).require.is_empty

    def test_conflicting_require_rejected(self):
        a = par_delta(zipf_alpha=0.9)
        b = Spec(require=ScenarioInfo(pars={"zipf_alpha": 0.7}))
        with pytest.raises(SpecError):
            a.compose(b)


class TestCodecs:
    def test_spec_json_round_trip(self):
        spec = Spec(
            require=ScenarioInfo(pars={"residential": True}),
            remove=ScenarioInfo(sets={"detour": [("dc-a", 1.0)]}),
            add=ScenarioInfo(sets={"subnet": [("Net-9", 0.1, False)]},
                             pars={"zipf_alpha": 0.9}),
        )
        assert Spec.from_json(spec.to_json()) == spec

    def test_empty_parts_omitted(self):
        assert par_delta(zipf_alpha=0.9).to_json_dict().keys() == {"add"}

    def test_malformed_json_raises_spec_error(self):
        with pytest.raises(SpecError):
            Spec.from_json("{not json")
        with pytest.raises(SpecError):
            Spec.from_json_dict({"patch": {}})

    def test_load_spec_json(self, tmp_path):
        path = tmp_path / "delta.json"
        spec = par_delta(policy="proportional")
        path.write_text(spec.to_json())
        assert load_spec(str(path)) == spec

    @pytest.mark.skipif(sys.version_info < (3, 11), reason="tomllib is 3.11+")
    def test_load_spec_toml(self, tmp_path):
        path = tmp_path / "delta.toml"
        path.write_text('[add.pars]\nzipf_alpha = 0.9\npolicy = "geographic"\n')
        assert load_spec(str(path)) == par_delta(zipf_alpha=0.9, policy="geographic")

    def test_load_spec_toml_gated_without_tomllib(self, tmp_path, monkeypatch):
        path = tmp_path / "delta.toml"
        path.write_text("[add.pars]\nzipf_alpha = 0.9\n")
        # A None sys.modules entry makes `import tomllib` raise ImportError,
        # which is exactly the py<3.11 situation the gate covers.
        monkeypatch.setitem(sys.modules, "tomllib", None)
        with pytest.raises(SpecError, match="JSON"):
            load_spec(str(path))


class TestApply:
    def test_empty_spec_returns_base_identically(self):
        base = PAPER_SCENARIOS["EU1-FTTH"]
        scenario, policy = apply_to_scenario(base, EMPTY_SPEC)
        assert scenario is base
        assert policy == "preferred"

    def test_policy_par_routes_to_policy_kind(self):
        base = PAPER_SCENARIOS["EU1-FTTH"]
        scenario, policy = apply_to_scenario(base, par_delta(policy="geographic"))
        assert scenario is base  # no field changed
        assert policy == "geographic"

    def test_require_violation_names_the_gap(self):
        base = PAPER_SCENARIOS["EU1-FTTH"]
        spec = Spec(require=ScenarioInfo(pars={"residential": False}))
        with pytest.raises(SpecError, match="residential"):
            apply_to_scenario(base, spec)

    def test_remove_absent_element_rejected(self):
        base = PAPER_SCENARIOS["EU1-FTTH"]
        spec = Spec(remove=ScenarioInfo(sets={"detour": [("dc-oslo", 9.0)]}))
        with pytest.raises(SpecError, match="not present"):
            apply_to_scenario(base, spec)

    def test_duplicate_add_rejected(self):
        base = PAPER_SCENARIOS["EU1-FTTH"]
        spec = Spec(add=ScenarioInfo(sets={"detour": [("dc-milan", 0.0)]}))
        with pytest.raises(SpecError, match="already present"):
            apply_to_scenario(base, spec)

    def test_datacenter_delta_folds_into_plan_fields(self):
        base = PAPER_SCENARIOS["EU1-FTTH"]
        miami = next(pair for pair in GOOGLE_DC_PLAN if pair[0] == "Miami")
        spec = Spec(
            remove=ScenarioInfo(sets={"datacenter": [miami]}),
            add=ScenarioInfo(sets={"datacenter": [("Oslo", 48)]}),
        )
        scenario, _ = apply_to_scenario(base, spec)
        assert scenario.removed_dcs == ("Miami",)
        assert scenario.extra_dcs == (("Oslo", 48),)
        plan = dict(scenario.effective_dc_plan())
        assert "Miami" not in plan and plan["Oslo"] == 48

    def test_datacenter_remove_needs_exact_pair(self):
        base = PAPER_SCENARIOS["EU1-FTTH"]
        spec = Spec(remove=ScenarioInfo(sets={"datacenter": [("Miami", 1)]}))
        with pytest.raises(SpecError, match="not in the base plan"):
            apply_to_scenario(base, spec)

    def test_readding_removed_builtin_restores_it(self):
        miami = next(pair for pair in GOOGLE_DC_PLAN if pair[0] == "Miami")
        gone = Spec(remove=ScenarioInfo(sets={"datacenter": [miami]}))
        back = Spec(add=ScenarioInfo(sets={"datacenter": [miami]}))
        scenario, _ = apply_to_scenario(
            PAPER_SCENARIOS["EU1-FTTH"], gone.compose(back)
        )
        assert scenario.removed_dcs == ()
        assert scenario.extra_dcs == ()

    def test_apply_spec_builds_fingerprinted_world(self):
        world = apply_spec("EU1-FTTH", par_delta(policy="proportional"),
                           scale=0.002, duration_s=3600.0)
        assert world.policy_kind == "proportional"
        assert world.build_config() is not None

    def test_apply_spec_unknown_base_name(self):
        with pytest.raises(KeyError):
            apply_spec("Mars", EMPTY_SPEC)

    def test_extra_dc_world_actually_grows(self):
        spec = Spec(add=ScenarioInfo(sets={"datacenter": [("Oslo", 48)]}))
        scenario, policy = apply_to_scenario(PAPER_SCENARIOS["EU1-FTTH"], spec)
        world = build_world(scenario, scale=0.002, duration_s=3600.0,
                            policy_kind=policy)
        cities = {dc.city.name for dc in world.system.directory}
        assert "Oslo" in cities


class TestRegistry:
    def test_spec_package_imports_first(self):
        # repro.spec and repro.sim import each other (the registry needs
        # ScenarioSpec; PAPER_SCENARIOS materialises from the registry).
        # Either package must be importable first in a fresh interpreter.
        for first in ("repro.spec", "repro.sim", "repro.sim.driver"):
            code = (
                f"import {first}\n"
                "from repro.sim import PAPER_SCENARIOS\n"
                "from repro.spec.registry import paper_scenarios\n"
                "assert PAPER_SCENARIOS == paper_scenarios()\n"
            )
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env={**os.environ, "PYTHONPATH": "src"},
                cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            )
            assert proc.returncode == 0, f"{first} first failed:\n{proc.stderr}"

    def test_all_datasets_registered(self):
        for name in PAPER_SCENARIOS:
            assert name in spec_names()
        assert "US-Campus-Feb2011" in spec_names()

    def test_materialised_specs_match_paper_scenarios(self):
        for name, spec in PAPER_SCENARIOS.items():
            assert scenario_spec(name) == spec

    def test_materialisation_is_memoised(self):
        assert scenario_spec("EU2") is scenario_spec("EU2")

    def test_unknown_name_raises_key_error(self):
        with pytest.raises(KeyError, match="Mars"):
            named_spec("Mars")

    def test_register_and_unregister(self):
        register_spec("test-tiny", par_delta(num_clients=50))
        try:
            assert scenario_spec("test-tiny").num_clients == 50
            assert scenario_spec("test-tiny").name == BARE_BASE.name
        finally:
            unregister_spec("test-tiny")
        with pytest.raises(KeyError):
            named_spec("test-tiny")

    def test_builtins_cannot_be_shadowed_or_dropped(self):
        with pytest.raises(SpecError):
            register_spec("EU2", EMPTY_SPEC)
        with pytest.raises(SpecError):
            unregister_spec("EU2")


class TestGrid:
    def test_axis_validation(self):
        with pytest.raises(SpecError):
            GridAxis("", (1,))
        with pytest.raises(SpecError):
            GridAxis("x", ())
        with pytest.raises(SpecError):
            GridAxis("x", (1, 1))
        with pytest.raises(SpecError):
            GridAxis("x", ([1],))

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(SpecError):
            GridSpec(axes=(GridAxis("x", (1,)), GridAxis("x", (2,))))

    def test_filter_must_reference_known_axis(self):
        with pytest.raises(SpecError):
            GridSpec(axes=(GridAxis("x", (1,)),), filters=[[("y", 1)]])

    def test_enumeration_order_and_labels(self):
        grid = GridSpec(
            base="EU1-FTTH",
            axes=(GridAxis("policy", ("preferred", "geographic")),
                  GridAxis("zipf_alpha", (0.8, 1.0))),
        )
        points = enumerate_points(grid)
        assert [p.label for p in points] == [
            "policy=preferred,zipf_alpha=0.8",
            "policy=preferred,zipf_alpha=1.0",
            "policy=geographic,zipf_alpha=0.8",
            "policy=geographic,zipf_alpha=1.0",
        ]
        assert all(isinstance(p, GridPoint) for p in points)

    def test_filters_drop_matching_combinations(self):
        grid = GridSpec(
            base="EU1-FTTH",
            axes=(GridAxis("policy", ("preferred", "geographic")),
                  GridAxis("zipf_alpha", (0.8, 1.0))),
            filters=[[("policy", "geographic"), ("zipf_alpha", 1.0)]],
        )
        labels = [p.label for p in enumerate_points(grid)]
        assert "policy=geographic,zipf_alpha=1.0" not in labels
        assert len(labels) == 3

    def test_filters_dropping_everything_rejected(self):
        grid = GridSpec(
            base="EU1-FTTH",
            axes=(GridAxis("policy", ("preferred",)),),
            filters=[[("policy", "preferred")]],
        )
        with pytest.raises(SpecError, match="empty grid"):
            enumerate_points(grid)

    def test_no_axes_enumerates_bare_base(self):
        points = enumerate_points(GridSpec(base="EU2"))
        assert len(points) == 1
        assert points[0].label == ""
        assert points[0].delta.is_empty

    def test_dataset_axis_switches_base(self):
        grid = GridSpec(axes=(GridAxis("dataset", ("EU1-FTTH", "EU2")),))
        points = enumerate_points(grid)
        assert [p.base for p in points] == ["EU1-FTTH", "EU2"]
        assert all(p.delta.is_empty for p in points)

    def test_variant_axis_composes_variant_spec(self):
        from repro.whatif.variants import variant_by_name

        grid = GridSpec(axes=(GridAxis("variant", ("old-policy",)),))
        (point,) = enumerate_points(grid)
        assert point.delta == variant_by_name("old-policy").spec

    def test_bad_axis_values_fail_before_any_run(self):
        with pytest.raises(SpecError):
            enumerate_points(GridSpec(axes=(GridAxis("policy", ("nearest",)),)))
        with pytest.raises(SpecError):
            enumerate_points(GridSpec(axes=(GridAxis("warp_factor", (9,)),)))
        with pytest.raises(KeyError):
            enumerate_points(GridSpec(axes=(GridAxis("dataset", ("Mars",)),)))
        with pytest.raises(KeyError):
            enumerate_points(GridSpec(base="Mars"))

    def test_grid_json_round_trip(self, tmp_path):
        grid = GridSpec(
            base="EU2",
            axes=(GridAxis("policy", ("preferred", "geographic")),),
            filters=[[("policy", "geographic")]],
        )
        parsed = GridSpec.from_json(grid.to_json())
        assert parsed == grid
        path = tmp_path / "grid.json"
        path.write_text(grid.to_json())
        assert load_grid(str(path)) == grid

    def test_grid_json_rejects_unknown_keys(self):
        with pytest.raises(SpecError):
            GridSpec.from_json('{"bases": "EU2"}')

    def test_diff_grids_reports_added_removed_common(self):
        small = GridSpec(axes=(GridAxis("policy", ("preferred",)),))
        large = GridSpec(
            axes=(GridAxis("policy", ("preferred", "geographic")),)
        )
        difference = diff_grids(small, large)
        assert difference == {
            "added": ["policy=geographic"],
            "removed": [],
            "common": ["policy=preferred"],
        }


@pytest.fixture
def cache_env(monkeypatch, tmp_path):
    """A live artifact cache in a fresh temp dir (suite default is off)."""
    monkeypatch.setenv("REPRO_CACHE", "on")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    reset_default_store()
    driver.clear_cache()
    yield tmp_path
    reset_default_store()
    driver.clear_cache()


RUN = dict(scale=0.002, seed=7, duration_s=21600.0)


class TestRunner:
    def test_plan_marks_everything_cold_without_cache(self):
        grid = GridSpec(axes=(GridAxis("policy", ("preferred", "geographic")),))
        plan = plan_grid(grid, **RUN)
        assert [p["warm"] for p in plan] == [False, False]
        assert [p["policy"] for p in plan] == ["preferred", "geographic"]

    def test_extended_grid_simulates_only_added_points(self, cache_env):
        small = GridSpec(axes=(GridAxis("policy", ("preferred",)),))
        cold = run_grid(small, **RUN)
        assert (cold.warm, cold.cold) == (0, 1)

        large = GridSpec(
            axes=(GridAxis("policy", ("preferred", "proportional")),)
        )
        warm = run_grid(large, **RUN)
        assert (warm.warm, warm.cold) == (1, 1)
        assert warm.row("policy=preferred").requests == cold.rows[0].requests
        with pytest.raises(KeyError):
            warm.row("policy=nearest")

    def test_grid_row_labels_match_sweep_labels(self, cache_env):
        """A one-axis grid over a spec field shares the sweep's artifacts."""
        from repro.whatif.sweep import sweep_parameter

        grid = GridSpec(
            base="EU1-FTTH", axes=(GridAxis("zipf_alpha", (0.8,)),)
        )
        run_grid(grid, **RUN)
        result = sweep_parameter("EU1-FTTH", "zipf_alpha", [0.8], **RUN)
        assert result.metrics[0].label == "zipf_alpha=0.8"
        from repro.artifacts.store import default_store

        counters = default_store().lifetime_counters()["stages"]["whatif/metrics"]
        assert counters["hits"] >= 1  # the sweep re-read the grid's row
