"""Focused unit tests for the geography analyses (Table III, Figures 2-3)."""

import pytest

from repro.core.geography import (
    ContinentRow,
    confidence_radius_cdfs,
    continent_table,
    render_table3,
    rtt_cdf,
    vantage_rtt_campaign,
)
from repro.geo.cities import default_atlas
from repro.geoloc.clustering import DataCenterCluster, ServerMap
from repro.geoloc.cbg import CbgResult
from repro.geoloc.probing import RttProber


class TestCampaign:
    def test_unreachable_targets_skipped(self, tiny_world):
        from repro.sim.engine import run_requests

        result = run_requests(tiny_world)
        prober = RttProber(tiny_world.latency, probes=3, seed=1)

        def site_of_ip(ip):
            # Pretend half the servers are unreachable.
            return tiny_world.site_of_server_ip(ip) if ip % 2 == 0 else None

        rtts = vantage_rtt_campaign(result.dataset, prober, site_of_ip)
        assert rtts
        assert all(ip % 2 == 0 for ip in rtts)
        assert all(rtt > 0 for rtt in rtts.values())

    def test_rtt_cdf_requires_measurements(self):
        with pytest.raises(ValueError):
            rtt_cdf({})


def _cluster(city_name, ips, conf=40.0):
    city = default_atlas().get(city_name)
    return DataCenterCluster(
        cluster_id=f"cluster-{city_name.lower().replace(' ', '-')}",
        city=city,
        estimate=city.point,
        confidence_radius_km=conf,
        server_ips=list(ips),
    )


def _server_map(clusters, confs=None):
    by_ip = {}
    results = {}
    for i, cluster in enumerate(clusters):
        for ip in cluster.server_ips:
            by_ip[ip] = cluster
            results[ip & 0xFFFFFF00] = CbgResult(
                estimate=cluster.estimate,
                confidence_radius_km=(confs or {}).get(cluster.cluster_id,
                                                       cluster.confidence_radius_km),
                feasible=True,
                constraints_used=50,
            )
    return ServerMap(clusters=clusters, by_ip=by_ip, results_by_slash24=results)


class TestConfidenceCdfs:
    def test_split_by_region(self):
        clusters = [
            _cluster("Chicago", [0x0A000001], conf=30.0),
            _cluster("Milan", [0x0B000001], conf=90.0),
            _cluster("Tokyo", [0x0C000001], conf=500.0),
        ]
        cdfs = confidence_radius_cdfs(_server_map(clusters))
        assert set(cdfs) == {"US", "Europe"}
        assert cdfs["US"].median == pytest.approx(30.0)
        assert cdfs["Europe"].median == pytest.approx(90.0)

    def test_empty_regions_omitted(self):
        clusters = [_cluster("Tokyo", [0x0C000001])]
        assert confidence_radius_cdfs(_server_map(clusters)) == {}


class TestContinentTable:
    def test_counts_respect_focus(self, tiny_world):
        from repro.sim.engine import run_requests

        result = run_requests(tiny_world)
        clusters = [
            _cluster("Milan", result.dataset.server_ips[:3]),
            _cluster("Chicago", result.dataset.server_ips[3:5]),
        ]
        server_map = _server_map(clusters)
        focus = {result.dataset.name: result.dataset.server_ips[:4]}
        rows = continent_table([result.dataset], server_map, focus)
        assert len(rows) == 1
        assert rows[0].counts["Europe"] == 3
        assert rows[0].counts["N. America"] == 1
        assert rows[0].total == 4

    def test_render(self):
        rows = [ContinentRow(name="X", counts={"N. America": 1, "Europe": 2, "Others": 0})]
        text = render_table3(rows)
        assert "TABLE III" in text and "X" in text
