"""Tests for the workload package: diurnal profiles, clients, requests."""

import random

import pytest

from repro.cdn.catalog import Resolution, VideoCatalog
from repro.sim.scenarios import PAPER_SCENARIOS, build_world
from repro.workload.clients import build_population
from repro.workload.diurnal import DiurnalProfile
from repro.workload.interactions import InteractionModel
from repro.workload.requests import RequestGenerator, sample_resolution


class TestDiurnal:
    def test_multiplier_cycles_daily(self):
        profile = DiurnalProfile.campus()
        assert profile.multiplier(3 * 3600.0) == pytest.approx(
            profile.multiplier(3 * 3600.0 + 7 * 86400.0)
        )

    def test_day_night_contrast(self):
        for profile in (DiurnalProfile.campus(), DiurnalProfile.residential()):
            night = profile.multiplier(4 * 3600.0)  # 4 am, first day
            evening = profile.multiplier(20 * 3600.0)  # 8 pm
            assert evening > night * 4

    def test_flat_profile(self):
        flat = DiurnalProfile.flat()
        assert all(m == 1.0 for m in flat.hourly_multipliers(48))

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalProfile(hourly_shape=(1.0,) * 23, weekly_shape=(1.0,) * 7)
        with pytest.raises(ValueError):
            DiurnalProfile(hourly_shape=(1.0,) * 24, weekly_shape=(1.0,) * 6)
        with pytest.raises(ValueError):
            DiurnalProfile(hourly_shape=(-1.0,) + (1.0,) * 23, weekly_shape=(1.0,) * 7)
        with pytest.raises(ValueError):
            DiurnalProfile.flat().multiplier(-1.0)


@pytest.fixture(scope="module")
def vantage():
    # Borrow a built world's vantage point (has subnets + resolvers).
    return build_world(PAPER_SCENARIOS["EU1-Campus"], scale=0.01, seed=2).vantage


class TestClients:
    def test_population_size(self, vantage):
        pop = build_population(vantage, 100, seed=1)
        assert len(pop) == 100

    def test_clients_in_their_subnets(self, vantage):
        pop = build_population(vantage, 100, seed=1)
        for client in pop:
            subnet = vantage.subnet_of(client.ip)
            assert subnet is not None
            assert subnet.name == client.subnet_name

    def test_subnet_shares_respected(self, vantage):
        pop = build_population(vantage, 200, seed=2)
        groups = pop.by_subnet()
        share_1 = len(groups["Net-1"]) / 200
        assert 0.4 < share_1 < 0.7  # spec says 0.55

    def test_unique_ips(self, vantage):
        pop = build_population(vantage, 300, seed=3)
        ips = [c.ip for c in pop]
        assert len(set(ips)) == len(ips)

    def test_heavy_tail_activity(self, vantage):
        pop = build_population(vantage, 500, seed=4)
        activities = sorted((c.activity for c in pop), reverse=True)
        top_decile = sum(activities[:50])
        assert top_decile > sum(activities) * 0.25

    def test_sampling_prefers_active(self, vantage):
        pop = build_population(vantage, 50, seed=5)
        heaviest = max(pop, key=lambda c: c.activity)
        rng = random.Random(0)
        hits = sum(1 for _ in range(2000) if pop.sample(rng.random()).ip == heaviest.ip)
        assert hits / 2000 > 1.5 / 50

    def test_validation(self, vantage):
        with pytest.raises(ValueError):
            build_population(vantage, 0)
        pop = build_population(vantage, 10, seed=6)
        with pytest.raises(ValueError):
            pop.sample(1.0)


class TestInteractions:
    def test_disabled(self):
        model = InteractionModel.disabled()
        rng = random.Random(0)
        assert all(not model.draw_gaps(rng) for _ in range(100))

    def test_gap_bounds(self):
        model = InteractionModel(probability=1.0, min_gap_s=10.0, max_gap_s=20.0)
        rng = random.Random(1)
        for _ in range(100):
            for gap in model.draw_gaps(rng):
                assert 10.0 <= gap <= 20.0

    def test_resolution_switch(self):
        model = InteractionModel(resolution_switch_probability=1.0)
        rng = random.Random(2)
        assert model.next_resolution(Resolution.R360, rng) is not Resolution.R360

    def test_no_switch(self):
        model = InteractionModel(resolution_switch_probability=0.0)
        rng = random.Random(3)
        assert model.next_resolution(Resolution.R360, rng) is Resolution.R360

    def test_validation(self):
        with pytest.raises(ValueError):
            InteractionModel(probability=1.5)
        with pytest.raises(ValueError):
            InteractionModel(min_gap_s=0.0)
        with pytest.raises(ValueError):
            InteractionModel(min_gap_s=10.0, max_gap_s=5.0)


class TestRequestGenerator:
    @pytest.fixture(scope="class")
    def generator(self, vantage):
        pop = build_population(vantage, 100, seed=7)
        catalog = VideoCatalog(size=800, seed=7)
        return RequestGenerator(
            population=pop,
            catalog=catalog,
            profile=DiurnalProfile.campus(),
            requests_per_day=600.0,
            seed=7,
        )

    def test_requests_sorted(self, generator):
        requests = generator.generate(2 * 86400.0)
        times = [r.t_s for r in requests]
        assert times == sorted(times)

    def test_volume_near_target(self, generator):
        requests = generator.generate(7 * 86400.0)
        primaries = [r for r in requests if not r.is_interaction]
        assert 0.7 * 4200 < len(primaries) < 1.3 * 4200

    def test_interactions_share_client_and_video(self, generator):
        requests = generator.generate(86400.0)
        primaries = {
            (r.client.ip, r.video.video_id) for r in requests if not r.is_interaction
        }
        for r in requests:
            if r.is_interaction:
                assert (r.client.ip, r.video.video_id) in primaries

    def test_deterministic(self, vantage):
        pop = build_population(vantage, 50, seed=8)
        catalog = VideoCatalog(size=500, seed=8)

        def gen():
            return RequestGenerator(
                pop, catalog, DiurnalProfile.flat(), 200.0, seed=9
            ).generate(86400.0)

        a, b = gen(), gen()
        assert [(r.t_s, r.client.ip, r.video.video_id) for r in a] == [
            (r.t_s, r.client.ip, r.video.video_id) for r in b
        ]

    def test_diurnal_shape_visible(self, vantage):
        pop = build_population(vantage, 50, seed=10)
        catalog = VideoCatalog(size=500, seed=10)
        gen = RequestGenerator(
            pop, catalog, DiurnalProfile.residential(), 5000.0, seed=11
        )
        requests = gen.generate(86400.0)
        night = sum(1 for r in requests if 2 <= r.t_s / 3600.0 < 6)
        evening = sum(1 for r in requests if 18 <= r.t_s / 3600.0 < 22)
        assert evening > night * 3

    def test_validation(self, vantage):
        pop = build_population(vantage, 10, seed=12)
        catalog = VideoCatalog(size=100, seed=12)
        with pytest.raises(ValueError):
            RequestGenerator(pop, catalog, DiurnalProfile.flat(), 0.0)
        gen = RequestGenerator(pop, catalog, DiurnalProfile.flat(), 10.0)
        with pytest.raises(ValueError):
            gen.generate(0.0)


class TestResolutionMix:
    def test_360_dominates(self):
        rng = random.Random(0)
        picks = [sample_resolution(rng) for _ in range(4000)]
        share_360 = picks.count(Resolution.R360) / len(picks)
        assert 0.45 < share_360 < 0.65
        assert picks.count(Resolution.R720) < picks.count(Resolution.R240)
