"""Tests for the reporting helpers: CDFs, series, tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reporting.series import Cdf, Series, hourly_counts, hourly_fraction
from repro.reporting.tables import TextTable, format_bytes, format_fraction


class TestCdf:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cdf([])

    def test_basic_quantiles(self):
        cdf = Cdf(range(1, 101))
        assert cdf.min == 1
        assert cdf.max == 100
        assert cdf.median == 50
        assert cdf.quantile(0.9) == 90

    def test_fraction_below(self):
        cdf = Cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_below(0.5) == 0.0
        assert cdf.fraction_below(2.0) == 0.5
        assert cdf.fraction_below(100.0) == 1.0

    def test_quantile_bounds(self):
        cdf = Cdf([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)
        assert cdf.quantile(0.0) == 1.0
        assert cdf.quantile(1.0) == 1.0

    def test_mean(self):
        assert Cdf([1.0, 2.0, 3.0]).mean() == pytest.approx(2.0)

    def test_points_decimated(self):
        cdf = Cdf(range(1000))
        pts = cdf.points(max_points=50)
        assert len(pts) <= 60
        assert pts[-1] == (999, 1.0)

    def test_render(self):
        text = Cdf([1, 2, 3]).render("x")
        assert "CDF[x]" in text and "p50=" in text

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    @settings(max_examples=80)
    def test_monotonicity_property(self, values):
        cdf = Cdf(values)
        assert cdf.fraction_below(cdf.min - 1) == 0.0
        assert cdf.fraction_below(cdf.max) == 1.0
        qs = [cdf.quantile(p / 10) for p in range(11)]
        assert qs == sorted(qs)

    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                    min_size=1, max_size=100),
           st.floats(min_value=0, max_value=100))
    @settings(max_examples=80)
    def test_fraction_below_matches_count(self, values, x):
        cdf = Cdf(values)
        expected = sum(1 for v in values if v <= x) / len(values)
        assert cdf.fraction_below(x) == pytest.approx(expected)


class TestSeries:
    def test_append_and_lookup(self):
        s = Series(label="x")
        s.append(1.0, 10.0)
        s.append(2.0, 20.0)
        assert len(s) == 2
        assert s.y_at(2.0) == 20.0
        assert s.y_at(99.0, default=-1.0) == -1.0
        assert s.max_y() == 20.0

    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            Series(label="x", xs=[1.0], ys=[])

    def test_empty_max_raises(self):
        with pytest.raises(ValueError):
            Series(label="x").max_y()

    def test_render(self):
        s = Series(label="demo", xs=[0.0, 1.0], ys=[2.0, 3.0])
        assert "demo" in s.render()


class TestHourly:
    def test_counts(self):
        counts = hourly_counts([0, 0, 1, 5, 99], num_hours=6)
        assert counts == [2, 1, 0, 0, 0, 1][:6]

    def test_fraction(self):
        fractions = hourly_fraction([0, 0], [0, 0, 0, 0, 1], num_hours=2)
        assert fractions[0] == pytest.approx(0.5)
        assert fractions[1] == pytest.approx(0.0)

    def test_min_denominator(self):
        fractions = hourly_fraction([0], [0, 1], num_hours=2, min_denominator=2)
        assert fractions == {}


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["a", "bbb"], title="T")
        table.add_row(1, 22)
        table.add_row(333, 4)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5  # title, header, separator, two rows
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_cell_count_enforced(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_formatters(self):
        assert format_bytes(2_500_000_000) == "2.50"
        assert format_fraction(0.1234) == "12.3"
        assert format_fraction(0.1234, 2) == "12.34"

    def test_num_rows(self):
        table = TextTable(["a"])
        table.add_row(1)
        assert table.num_rows == 1
