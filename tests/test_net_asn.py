"""Tests for the AS registry (the simulated whois)."""

import pytest

from repro.net.asn import AsRegistry, GOOGLE_ASN, YOUTUBE_EU_ASN
from repro.net.ip import parse_ip, parse_network


@pytest.fixture
def registry():
    reg = AsRegistry()
    reg.register_as(GOOGLE_ASN, "Google Inc.")
    reg.register_as(YOUTUBE_EU_ASN, "YouTube-EU")
    reg.announce(parse_network("173.194.0.0/16"), GOOGLE_ASN)
    reg.announce(parse_network("173.194.55.0/24"), YOUTUBE_EU_ASN)
    return reg


class TestRegistry:
    def test_whois_basic(self, registry):
        system = registry.whois(parse_ip("173.194.1.1"))
        assert system is not None
        assert system.asn == GOOGLE_ASN
        assert system.name == "Google Inc."

    def test_longest_prefix_match_wins(self, registry):
        system = registry.whois(parse_ip("173.194.55.7"))
        assert system.asn == YOUTUBE_EU_ASN

    def test_unannounced_returns_none(self, registry):
        assert registry.whois(parse_ip("8.8.8.8")) is None
        assert registry.asn_of(parse_ip("8.8.8.8")) is None

    def test_announce_requires_registration(self):
        reg = AsRegistry()
        with pytest.raises(KeyError):
            reg.announce(parse_network("10.0.0.0/8"), 64512)

    def test_conflicting_announcement_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.announce(parse_network("173.194.0.0/16"), YOUTUBE_EU_ASN)

    def test_re_register_same_name_ok(self, registry):
        system = registry.register_as(GOOGLE_ASN, "Google Inc.")
        assert system.asn == GOOGLE_ASN

    def test_re_register_different_name_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.register_as(GOOGLE_ASN, "Someone Else")

    def test_get_as(self, registry):
        assert registry.get_as(GOOGLE_ASN).name == "Google Inc."
        with pytest.raises(KeyError):
            registry.get_as(99999)

    def test_announced_networks(self, registry):
        nets = registry.announced_networks(GOOGLE_ASN)
        assert [str(n) for n in nets] == ["173.194.0.0/16"]

    def test_describe(self, registry):
        text = registry.describe(parse_ip("173.194.1.1"))
        assert "AS15169" in text and "Google" in text
        assert "no origin AS" in registry.describe(parse_ip("9.9.9.9"))
