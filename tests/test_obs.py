"""Unit tests for the observability layer (``repro.obs``).

Covers the metrics registry, the span tracer and its ambient helpers,
capture/merge across a simulated process boundary, the trace export
views, the ``phase_timer`` shim, and the run-scoping of the degradation
collector.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro import obs
from repro.faults import report as degradation
from repro.faults.plan import FaultPlan, clear_current_plan, set_current_plan
from repro.obs.metrics import HISTOGRAM_BOUNDS, Histogram, MetricsRegistry
from repro.reporting.timing import phase_timer, phases_summary, reset_phases


@pytest.fixture(autouse=True)
def fresh_run():
    """Every test gets its own run context (and leaves none behind)."""
    run = obs.new_run("test-run")
    yield run
    obs.set_current_run(None)


# ------------------------------------------------------------------ metrics


class TestMetrics:

    def test_counters_accumulate_per_label_set(self):
        reg = MetricsRegistry()
        reg.inc("cache.hit", stage="sim/run_week")
        reg.inc("cache.hit", 2, stage="sim/run_week")
        reg.inc("cache.hit", stage="cli/study")
        assert reg.counter_total("cache.hit") == 4
        snapshot = reg.snapshot()
        assert snapshot["counters"]["cache.hit{stage=sim/run_week}"] == 3
        assert snapshot["counters"]["cache.hit{stage=cli/study}"] == 1

    def test_gauges_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("workers", 4)
        reg.set_gauge("workers", 8)
        assert reg.snapshot()["gauges"]["workers"] == 8

    def test_histogram_buckets_and_extremes(self):
        hist = Histogram()
        hist.observe(5e-6)   # below the first bound
        hist.observe(0.05)   # between 1e-2 and 0.1
        hist.observe(100.0)  # overflow bucket
        assert hist.count == 3
        assert hist.counts[0] == 1
        assert hist.counts[HISTOGRAM_BOUNDS.index(0.1)] == 1
        assert hist.counts[-1] == 1
        assert hist.min == 5e-6 and hist.max == 100.0

    def test_merge_adds_counters_and_folds_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 1)
        b.inc("n", 2)
        a.observe("lat", 0.5)
        b.observe("lat", 0.7)
        a.merge(b)
        assert a.counter_total("n") == 3
        merged = a.snapshot()["histograms"]["lat"]
        assert merged["count"] == 2
        assert merged["max"] == 0.7

    def test_registry_pickles(self):
        reg = MetricsRegistry()
        reg.inc("n", 3, stage="x")
        reg.observe("lat", 0.01)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.snapshot() == reg.snapshot()

    def test_snapshot_is_json_serialisable(self):
        reg = MetricsRegistry()
        reg.inc("n")
        reg.set_gauge("g", 1.5)
        reg.observe("h", 0.2)
        json.dumps(reg.snapshot())


# ------------------------------------------------------------------- tracer


class TestTracer:

    def test_spans_nest_and_link_parents(self, fresh_run):
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        records = {r.name: r for r in fresh_run.tracer.records}
        assert records["inner"].parent_id == records["outer"].span_id
        assert records["outer"].parent_id is None
        assert records["outer"].inclusive_s >= records["inner"].inclusive_s

    def test_span_ids_are_counter_based(self, fresh_run):
        with obs.span("a"):
            pass
        with obs.span("b"):
            pass
        ids = [r.span_id for r in fresh_run.tracer.records]
        assert ids == ["s1", "s2"]

    def test_inc_lands_on_registry_and_innermost_span(self, fresh_run):
        with obs.span("outer"):
            with obs.span("inner"):
                obs.inc("events", 3, stage="x")
        records = {r.name: r for r in fresh_run.tracer.records}
        assert records["inner"].counters == {"events": 3}
        assert records["outer"].counters == {}
        assert fresh_run.metrics.counter_total("events") == 3

    def test_off_switch_disables_everything(self, fresh_run, monkeypatch):
        monkeypatch.setenv(obs.ENV_TRACE, "off")
        assert not obs.trace_enabled()
        with obs.span("ignored") as active:
            assert active is None
            obs.inc("events")
            obs.observe("lat", 0.1)
        assert fresh_run.tracer.records == []
        assert fresh_run.metrics.snapshot()["counters"] == {}

    def test_attrs_survive_into_records(self, fresh_run):
        with obs.span("stage/sim", cached=True, n=5):
            pass
        (record,) = fresh_run.tracer.records
        assert record.attrs == {"cached": True, "n": 5}


class TestCapture:

    def test_capture_collects_spans_and_metrics(self):
        ctx = obs.SpanContext(parent_id="s9", prefix="s9.t0")
        cap = obs.task_capture(ctx, "unit", attempt=2)
        with cap:
            with obs.span("work"):
                obs.inc("units", 4)
        result = cap.result
        assert result is not None
        names = [r.name for r in result.records]
        assert "task:unit" in names and "work" in names
        root = next(r for r in result.records if r.name == "task:unit")
        assert root.parent_id == "s9"
        assert root.span_id.startswith("s9.t0.a2.")
        assert root.attrs["ok"] is True
        assert result.metrics.counter_total("units") == 4

    def test_capture_pickles_like_a_worker_result(self):
        ctx = obs.SpanContext(parent_id="s1", prefix="s1.t3")
        cap = obs.task_capture(ctx, "unit")
        with cap:
            obs.inc("n")
        clone = pickle.loads(pickle.dumps(cap.result))
        assert clone.metrics.counter_total("n") == 1
        assert [r.name for r in clone.records] == ["task:unit"]

    def test_merge_rebases_times_into_parent_clock(self, fresh_run):
        import time

        ctx = obs.SpanContext(parent_id=None, prefix="s1.t0")
        cap = obs.task_capture(ctx, "unit")
        with cap:
            pass
        obs.merge_capture(cap.result, time.perf_counter())
        (record,) = fresh_run.tracer.records
        # Rebased onto the run tracer's origin: non-negative and no
        # further in the past than the collection moment.
        assert record.t_start >= 0.0
        assert record.t_end <= fresh_run.tracer.now() + 1e-6

    def test_merge_none_is_a_noop(self, fresh_run):
        obs.merge_capture(None, 0.0)
        assert fresh_run.tracer.records == []

    def test_capture_flags_failed_tasks(self):
        cap = obs.task_capture(obs.SpanContext(None, "s1.t0"), "unit")
        with pytest.raises(RuntimeError):
            with cap:
                raise RuntimeError("task failed")
        root = cap.result.records[-1]
        assert root.attrs["ok"] is False


# -------------------------------------------------------------------- export


class TestExport:

    def _traced_run(self):
        run = obs.new_run("export-run")
        with obs.span("root"):
            with obs.span("child"):
                obs.inc("n", 2)
        return run

    def test_jsonl_roundtrip(self, tmp_path):
        run = self._traced_run()
        path = obs.write_trace(run, tmp_path)
        assert path.name == "trace_export-run.jsonl"
        doc = obs.read_trace(path)
        assert doc.run_id == "export-run"
        assert sorted(r.name for r in doc.spans) == ["child", "root"]
        assert doc.metrics["counters"] == {"n": 2}

    def test_read_rejects_non_trace_files(self, tmp_path):
        bogus = tmp_path / "not_a_trace.jsonl"
        bogus.write_text('{"event":"hit","stage":"x"}\n')
        with pytest.raises(ValueError, match="no run header"):
            obs.read_trace(bogus)
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text('{"type":"run","run_id":"r"}\n{"type":"span"}\n')
        with pytest.raises(ValueError, match="malformed span"):
            obs.read_trace(truncated)

    def test_summary_shows_tree_and_counters(self, tmp_path):
        doc = obs.read_trace(obs.write_trace(self._traced_run(), tmp_path))
        text = obs.render_summary(doc)
        assert "TRACE export-run" in text
        assert "root" in text and "  child" in text
        assert "n=2" in text

    def test_slowest_ranks_by_exclusive_time(self, tmp_path):
        doc = obs.read_trace(obs.write_trace(self._traced_run(), tmp_path))
        text = obs.render_slowest(doc, top=1)
        assert len(text.splitlines()) == 2  # header + one row

    def test_chrome_export_is_valid_trace_event_json(self, tmp_path):
        doc = obs.read_trace(obs.write_trace(self._traced_run(), tmp_path))
        out = obs.write_chrome(doc, tmp_path / "chrome.json")
        payload = json.loads(out.read_text())
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in events} == {"root", "child"}
        for event in events:
            assert event["ts"] >= 0 and event["dur"] >= 0

    def test_chrome_gives_worker_tasks_their_own_tracks(self):
        doc = obs.TraceDoc(run_id="r", spans=[
            obs.SpanRecord("s1", None, "map", 0.0, 1.0),
            obs.SpanRecord("s1.t0.a1.s1", "s1", "task:a", 0.0, 0.5),
            obs.SpanRecord("s1.t1.a1.s1", "s1", "task:b", 0.0, 0.5),
        ])
        events = [e for e in obs.to_chrome(doc)["traceEvents"] if e["ph"] == "X"]
        tids = {e["name"]: e["tid"] for e in events}
        assert tids["map"] != tids["task:a"] != tids["task:b"]

    def test_diff_reports_per_name_deltas(self):
        a = obs.TraceDoc(run_id="a", spans=[
            obs.SpanRecord("s1", None, "stage/sim", 0.0, 1.0),
        ])
        b = obs.TraceDoc(run_id="b", spans=[
            obs.SpanRecord("s1", None, "stage/sim", 0.0, 3.0),
        ])
        text = obs.render_diff(a, b)
        assert "stage/sim" in text
        assert "+2.000" in text


# ------------------------------------------------------------- phase shim


class TestPhaseShim:

    def test_phase_timer_accumulates_by_name(self):
        with phase_timer("analysis/x"):
            pass
        with phase_timer("analysis/x"):
            pass
        with phase_timer("analysis/y"):
            pass
        summary = phases_summary()
        assert set(summary) == {"analysis/x", "analysis/y"}
        assert summary["analysis/x"] >= 0.0

    def test_phases_reset(self):
        with phase_timer("analysis/x"):
            pass
        reset_phases()
        assert phases_summary() == {}

    def test_phases_summary_reset_flag(self):
        with phase_timer("analysis/x"):
            pass
        assert phases_summary(reset=True) != {}
        assert phases_summary() == {}

    def test_phases_scoped_to_run(self):
        with phase_timer("analysis/x"):
            pass
        obs.new_run()
        assert phases_summary() == {}

    def test_phases_are_spans_too(self, fresh_run):
        with phase_timer("analysis/x"):
            pass
        (record,) = fresh_run.tracer.records
        assert record.name == "analysis/x"
        assert record.attrs["kind"] == "phase"

    def test_phase_timer_disabled_with_tracing(self, monkeypatch):
        monkeypatch.setenv(obs.ENV_TRACE, "off")
        with phase_timer("analysis/x"):
            pass
        assert phases_summary() == {}


# ------------------------------------------------- degradation run-scoping


class TestDegradationScoping:

    @pytest.fixture(autouse=True)
    def _plan(self):
        set_current_plan(FaultPlan(probe_loss=0.5))
        yield
        clear_current_plan()

    def test_record_lands_on_current_run(self, fresh_run):
        degradation.record("geoloc/campaign", completed=1, probes_lost=3)
        assert fresh_run.degradation["geoloc/campaign"]["probes_lost"] == 3
        report = degradation.collect()
        assert report.total("probes_lost") == 3

    def test_new_run_starts_with_empty_collector(self):
        degradation.record("geoloc/campaign", completed=1)
        obs.new_run()
        assert degradation.collect().stages == {}

    def test_reset_clears_only_current_run(self):
        degradation.record("geoloc/campaign", completed=1)
        degradation.reset()
        assert degradation.collect().stages == {}
