#!/usr/bin/env python3
"""Cold-then-warm cache smoke test.

Runs the five-dataset study twice against a fresh artifact cache and
asserts the cache's two guarantees:

1. **Soundness** — the warm run's per-dataset ``content_digest()`` lines
   are byte-identical to the cold run's (an artifact is only ever a
   transparent stand-in for recomputation).
2. **Leverage** — the warm run is at least ``--min-speedup`` times faster
   than the cold run (by default 5x).

Each run is a separate subprocess, so the warm run demonstrates the
*cross-process* cache: nothing survives in memory, only the store.
Counters and timings land in ``benchmarks/out/cache_stats.json`` — the
artifact the CI cache-smoke job uploads.

Usage::

    python scripts/cache_smoke.py [--scale 0.02] [--min-speedup 5.0]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT_DIR = REPO / "benchmarks" / "out"

STUDY_ARGS = ["study", "--landmarks", "215", "--full", "--digests"]


def run_study(cache_dir: str, scale: float) -> tuple[float, dict, str]:
    """One ``repro study`` subprocess; returns (seconds, digests, output)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE_DIR"] = cache_dir
    env.pop("REPRO_CACHE", None)  # the smoke must exercise the cache
    command = [sys.executable, "-m", "repro"] + STUDY_ARGS + ["--scale", str(scale)]
    started = time.perf_counter()
    proc = subprocess.run(command, env=env, cwd=REPO, text=True,
                          capture_output=True, check=True)
    elapsed = time.perf_counter() - started
    digests = {}
    for line in proc.stdout.splitlines():
        if line.startswith("digest "):
            _, name, value = line.split()
            digests[name] = value
    if not digests:
        raise SystemExit("no digest lines in study output — --digests broken?")
    return elapsed, digests, proc.stdout


def cache_stats(cache_dir: str) -> dict:
    """The store's ``stats --json`` document, from a subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE_DIR"] = cache_dir
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "cache", "stats", "--json"],
        env=env, cwd=REPO, text=True, capture_output=True, check=True,
    )
    return json.loads(proc.stdout)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required cold/warm ratio (default 5.0)")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-cache-smoke-") as cache_dir:
        print(f"cache: {cache_dir}")
        cold_s, cold_digests, _ = run_study(cache_dir, args.scale)
        print(f"cold:  {cold_s:6.2f}s  ({len(cold_digests)} datasets)")
        warm_s, warm_digests, _ = run_study(cache_dir, args.scale)
        speedup = cold_s / warm_s if warm_s > 0 else float("inf")
        print(f"warm:  {warm_s:6.2f}s  (speedup {speedup:.1f}x)")
        stats = cache_stats(cache_dir)

    failures = []
    if warm_digests != cold_digests:
        failures.append(f"digests differ: cold={cold_digests} warm={warm_digests}")
    if speedup < args.min_speedup:
        failures.append(f"speedup {speedup:.2f}x below required "
                        f"{args.min_speedup:.2f}x")
    lifetime = stats["lifetime"]["total"]
    if lifetime["hits"] < 1:
        failures.append(f"warm run recorded no cache hits: {lifetime}")

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    report = {
        "scale": args.scale,
        "cold_seconds": round(cold_s, 3),
        "warm_seconds": round(warm_s, 3),
        "speedup": round(speedup, 2),
        "min_speedup": args.min_speedup,
        "digests": cold_digests,
        "digests_identical": warm_digests == cold_digests,
        "cache": stats,
    }
    out_path = OUT_DIR / "cache_stats.json"
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote {out_path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("cache smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
