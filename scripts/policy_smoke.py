#!/usr/bin/env python3
"""Selection-policy testbed smoke test.

Runs ``repro eval`` once per registered selection policy at the pinned
golden scale (0.01, seed 7) under the **process** backend, in separate
subprocesses, and asserts the testbed's end-to-end guarantees:

1. **Every policy evaluates** — each registered kind simulates a full
   five-dataset week, flows through the blind analysis pipeline, and
   produces a ground-truth confusion matrix.
2. **Byte identity** — every policy's per-dataset digests match its
   golden fixture (``tests/golden/study_<policy>_0.01.digests``), and
   the ``preferred`` digests additionally match the baseline study
   fixture (``study_scale_0.01.digests``) byte for byte.
3. **Methodology sanity** — on the baseline ``preferred`` world the
   blind verdicts agree with ground truth on >= 99 % of sessions and
   the inferred preferred data center is the policy's intended one.

The per-policy accuracy table lands in
``benchmarks/out/BENCH_policy.json`` — the artifact the CI policy-smoke
job uploads.

Usage::

    python scripts/policy_smoke.py [--scale 0.01] [--landmarks 60]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT_DIR = REPO / "benchmarks" / "out"
GOLDEN_DIR = REPO / "tests" / "golden"

SEED = 7


def golden_digests(path: Path) -> dict:
    """``digest <dataset> <sha256>`` lines -> {dataset: sha256}."""
    return {
        line.split()[1]: line.split()[2]
        for line in path.read_text(encoding="ascii").splitlines()
        if line.strip()
    }


def registered_kinds() -> list:
    proc = subprocess.run(
        [sys.executable, "-c",
         "from repro.cdn.selection import registered_policy_kinds\n"
         "print('\\n'.join(registered_policy_kinds()))"],
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        cwd=REPO, text=True, capture_output=True, check=True,
    )
    return proc.stdout.split()


def run_eval(kind: str, cache_dir: str, scale: float,
             landmarks: int) -> tuple:
    """One ``repro eval --json`` subprocess; returns (seconds, document)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE_DIR"] = cache_dir
    env.pop("REPRO_CACHE", None)
    command = [
        sys.executable, "-m", "repro", "eval", "--policy", kind,
        "--scale", str(scale), "--seed", str(SEED),
        "--landmarks", str(landmarks), "--json",
        "--parallel", "process",
    ]
    started = time.perf_counter()
    proc = subprocess.run(command, env=env, cwd=REPO, text=True,
                          capture_output=True, check=True)
    elapsed = time.perf_counter() - started
    return elapsed, json.loads(proc.stdout)[kind]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.01)
    parser.add_argument("--landmarks", type=int, default=60)
    args = parser.parse_args()

    kinds = registered_kinds()
    print(f"policies: {', '.join(kinds)}")
    failures = []
    table = {}

    with tempfile.TemporaryDirectory(prefix="repro-policy-smoke-") as cache:
        for kind in kinds:
            elapsed, document = run_eval(kind, cache, args.scale,
                                         args.landmarks)
            accuracies = {
                name: entry["accuracy"]
                for name, entry in document["datasets"].items()
            }
            table[kind] = {
                "seconds": round(elapsed, 3),
                "mean_accuracy": document["mean_accuracy"],
                "accuracy": accuracies,
                "preferred_match": {
                    name: entry["preferred_match"]
                    for name, entry in document["datasets"].items()
                },
                "digests": document["digests"],
            }
            print(f"{kind:>14s}: {elapsed:6.2f}s  "
                  f"mean accuracy {document['mean_accuracy']:.3f}")

            if len(document["datasets"]) != 5:
                failures.append(
                    f"{kind}: evaluated {len(document['datasets'])} "
                    "datasets, expected 5"
                )
            fixture = GOLDEN_DIR / f"study_{kind}_0.01.digests"
            if args.scale == 0.01:
                if not fixture.exists():
                    failures.append(f"{kind}: no golden fixture {fixture}")
                elif document["digests"] != golden_digests(fixture):
                    failures.append(
                        f"{kind}: digests drifted from {fixture.name}"
                    )

    if args.scale == 0.01:
        baseline = golden_digests(GOLDEN_DIR / "study_scale_0.01.digests")
        if table.get("preferred", {}).get("digests") != baseline:
            failures.append(
                "preferred digests are not byte-identical to the baseline "
                "golden fixture (study_scale_0.01.digests)"
            )

    for name, accuracy in table.get("preferred", {}).get("accuracy", {}).items():
        if accuracy < 0.99:
            failures.append(
                f"baseline attribution accuracy on {name} is "
                f"{accuracy:.4f} < 0.99"
            )
    for name, matched in table.get("preferred", {}).get(
            "preferred_match", {}).items():
        if not matched:
            failures.append(
                f"baseline preferred-DC inference missed on {name}"
            )

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    report = {
        "scale": args.scale,
        "seed": SEED,
        "landmarks": args.landmarks,
        "backend": "process",
        "policies": table,
        "ok": not failures,
    }
    out_path = OUT_DIR / "BENCH_policy.json"
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote {out_path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("policy smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
