#!/usr/bin/env bash
# Regenerate the entire reproduction from scratch.
#
# Usage:
#   scripts/reproduce_all.sh [OUT_DIR]
#
# Produces, under OUT_DIR (default ./reproduction):
#   test_output.txt      full test-suite log
#   bench_output.txt     benchmark log (timings + shape assertions)
#   artifacts/           regenerated tables/figures (text)
#   figures/             gnuplot-ready .dat/.gp files for the CDF figures
#   study_report.txt     the full study report (every table and figure)
#   whatif.txt           the standard what-if comparison (EU1-ADSL)

set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

OUT_DIR="${1:-reproduction}"
mkdir -p "$OUT_DIR"

echo "== 1/5 test suite =="
python -m pytest tests/ 2>&1 | tee "$OUT_DIR/test_output.txt" | tail -1

echo "== 2/5 benchmarks (every table and figure) =="
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee "$OUT_DIR/bench_output.txt" | tail -1
mkdir -p "$OUT_DIR/artifacts"
cp benchmarks/out/*.txt "$OUT_DIR/artifacts/"

echo "== 3/5 full study report =="
python -m repro study --scale 0.02 --landmarks 215 --full > "$OUT_DIR/study_report.txt"
tail -3 "$OUT_DIR/study_report.txt"

echo "== 4/5 gnuplot figure export =="
python -m repro figures --out-dir "$OUT_DIR/figures" --scale 0.02 --landmarks 120

echo "== 5/5 what-if comparison =="
python -m repro whatif --dataset EU1-ADSL --scale 0.01 > "$OUT_DIR/whatif.txt"
head -4 "$OUT_DIR/whatif.txt"

echo "done: $OUT_DIR"
