#!/usr/bin/env bash
# Refresh the golden digest fixture after an intentional behaviour change.
#
# Re-runs the paper study at the pinned scale/seed and rewrites
# tests/golden/study_scale_0.01.digests with the new per-dataset content
# digests.  Review the diff before committing: every changed line is a
# claim that the simulator's output was *meant* to change.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT=tests/golden/study_scale_0.01.digests

PYTHONPATH=src REPRO_CACHE=off python -m repro study --scale 0.01 --seed 7 \
    --digests | grep '^digest ' > "$OUT.tmp"
mv "$OUT.tmp" "$OUT"

echo "updated $OUT:"
cat "$OUT"
