#!/usr/bin/env bash
# Refresh the golden digest fixtures after an intentional behaviour change.
#
# Re-runs the paper study at the pinned scale/seed and rewrites
# tests/golden/study_scale_0.01.digests (the baseline preferred-policy
# study) plus one tests/golden/study_<policy>_0.01.digests file per
# registered selection policy.  Review the diff before committing: every
# changed line is a claim that the simulator's output was *meant* to
# change.  The preferred per-policy file must stay byte-identical to the
# baseline file — the script fails if they diverge.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT=tests/golden/study_scale_0.01.digests

PYTHONPATH=src REPRO_CACHE=off python -m repro study --scale 0.01 --seed 7 \
    --digests | grep '^digest ' > "$OUT.tmp"
mv "$OUT.tmp" "$OUT"

echo "updated $OUT:"
cat "$OUT"

POLICIES=$(PYTHONPATH=src python -c \
    'from repro.cdn.selection import registered_policy_kinds
print("\n".join(registered_policy_kinds()))')

for policy in $POLICIES; do
    POUT="tests/golden/study_${policy}_0.01.digests"
    # `repro eval --digests` emits "digest <policy> <dataset> <sha256>";
    # the fixture stores "digest <dataset> <sha256>".
    PYTHONPATH=src REPRO_CACHE=off python -m repro eval --scale 0.01 --seed 7 \
        --policy "$policy" --digests | grep '^digest ' \
        | awk '{print $1, $3, $4}' > "$POUT.tmp"
    mv "$POUT.tmp" "$POUT"
    echo "updated $POUT"
done

# The preferred policy IS the baseline study; the fixtures must agree.
if ! diff -q "$OUT" tests/golden/study_preferred_0.01.digests > /dev/null; then
    echo "ERROR: study_preferred_0.01.digests diverged from $OUT" >&2
    exit 1
fi

# The monitor timeline: per-epoch snapshot digests over the built-in
# demo evolution (8 one-day epochs).
MOUT=tests/golden/monitor_0.01.digests
PYTHONPATH=src REPRO_CACHE=off python -m repro monitor --scale 0.01 --seed 7 \
    --digests | grep '^digest ' > "$MOUT.tmp"
mv "$MOUT.tmp" "$MOUT"
echo "updated $MOUT:"
cat "$MOUT"
