#!/usr/bin/env python3
"""Longitudinal-monitoring smoke test.

Runs ``repro monitor`` in subprocesses and asserts the subsystem's four
acceptance guarantees at scale 0.01:

1. **Detection** — the built-in demo evolution's three scheduled changes
   are detected at exactly their epochs (precision and recall 1.0, so
   both clear the >= 0.9 gate) with zero false alarms.
2. **Static stability** — a never-changing world raises zero alarms.
3. **Degradation is not change** — a static world under a nonzero fault
   plan (30 % probe loss) stays alarm-free while actually losing probes.
4. **Incremental epochs** — a warm re-run with the horizon extended
   simulates only the appended epochs; the cached prefix is served from
   the artifact store with byte-identical digests.

Timing and the verdicts land in ``benchmarks/out/BENCH_monitor.json``
for the CI artifact upload.

Usage::

    python scripts/monitor_smoke.py [--scale 0.01] [--epochs 8]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT_DIR = REPO / "benchmarks" / "out"


def run_monitor_cli(argv: list, extra_env: dict = {}) -> dict:
    """One ``repro monitor --json`` run in a fresh subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.setdefault("REPRO_CACHE", "off")
    env.update(extra_env)
    command = [sys.executable, "-m", "repro", "monitor", "--json", *argv]
    start = time.perf_counter()
    proc = subprocess.run(command, env=env, cwd=REPO, text=True,
                          capture_output=True)
    elapsed = time.perf_counter() - start
    if proc.returncode != 0:
        raise SystemExit(
            f"repro monitor {argv} exited {proc.returncode}:\n{proc.stderr}")
    doc = json.loads(proc.stdout)
    doc["_elapsed_s"] = elapsed
    return doc


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.01)
    parser.add_argument("--epochs", type=int, default=8)
    args = parser.parse_args()

    common = ["--scale", str(args.scale), "--seed", "7",
              "--epochs", str(args.epochs)]
    failures: list = []
    report: dict = {"scale": args.scale, "epochs": args.epochs}

    # ---- 1. demo evolution: every scheduled change, nothing else ------
    evolving = run_monitor_cli(common)
    verdict = evolving["verdict"]
    report["evolving"] = verdict
    report["evolving_s"] = round(evolving["_elapsed_s"], 3)
    if verdict["alarms"] != verdict["truth"]:
        failures.append(
            f"evolving world alarms {verdict['alarms']} != scheduled "
            f"changes {verdict['truth']}")
    if verdict["score"]["precision"] < 0.9 or verdict["score"]["recall"] < 0.9:
        failures.append(f"detection below the 0.9 gate: {verdict['score']}")

    # ---- 2. static world: zero alarms ---------------------------------
    static = run_monitor_cli(common + ["--static"])
    report["static"] = static["verdict"]
    if static["verdict"]["alarms"]:
        failures.append(
            f"static world raised alarms {static['verdict']['alarms']}")

    # ---- 3. degradation is not change ---------------------------------
    faulted = run_monitor_cli(
        common + ["--static", "--faults", '{"probe_loss": 0.3}'])
    report["faulted"] = faulted["verdict"]
    lost = sum(row["probes_lost"] for row in faulted["timeline"])
    report["faulted_probes_lost"] = lost
    if faulted["verdict"]["alarms"]:
        failures.append(
            f"static world under fault plan raised alarms "
            f"{faulted['verdict']['alarms']}")
    if lost == 0:
        failures.append("fault plan lost no probes; confusion test is vacuous")
    degraded_epochs = sum(1 for row in faulted["timeline"] if row["degradation"])
    report["faulted_degraded_epochs"] = degraded_epochs
    if degraded_epochs == 0:
        failures.append("per-epoch degradation counters missing under faults")

    # ---- 4. warm re-run simulates only the appended epochs ------------
    with tempfile.TemporaryDirectory(prefix="repro-monitor-smoke-") as cache:
        cache_env = {"REPRO_CACHE": "on", "REPRO_CACHE_DIR": cache}
        shorter = ["--scale", str(args.scale), "--seed", "7",
                   "--epochs", str(args.epochs - 2)]
        cold = run_monitor_cli(shorter, cache_env)
        warm = run_monitor_cli(common, cache_env)
        report["cold_epochs_computed"] = cold["epochs_computed"]
        report["warm_epochs_cached"] = warm["epochs_cached"]
        report["warm_epochs_computed"] = warm["epochs_computed"]
        report["warm_s"] = round(warm["_elapsed_s"], 3)
        if cold["epochs_cached"] != 0:
            failures.append("cold run claims cached epochs in a fresh cache")
        if warm["epochs_cached"] != args.epochs - 2:
            failures.append(
                f"warm re-run cached {warm['epochs_cached']} epochs, "
                f"expected {args.epochs - 2}")
        if warm["epochs_computed"] != 2:
            failures.append(
                f"warm re-run computed {warm['epochs_computed']} epochs, "
                "expected only the 2 appended ones")
        cold_digests = [row["digest"] for row in cold["timeline"]]
        warm_digests = [row["digest"] for row in warm["timeline"]]
        if warm_digests[: len(cold_digests)] != cold_digests:
            failures.append("cached epoch digests differ from the cold run")
        if warm["verdict"] != evolving["verdict"]:
            failures.append("warm verdict differs from the uncached run")

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    bench_path = OUT_DIR / "BENCH_monitor.json"
    bench_path.write_text(json.dumps({"smoke": report}, indent=2,
                                     sort_keys=True) + "\n",
                          encoding="utf-8")
    print(f"wrote {bench_path}")
    print(json.dumps(report, indent=2, sort_keys=True))

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("monitor smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
