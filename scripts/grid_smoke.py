#!/usr/bin/env python3
"""Grid incrementality smoke test.

Runs a 2x2 scenario grid cold against a fresh artifact cache, then
re-runs the *extended* grid (one axis value added) and asserts the spec
layer's incrementality guarantee:

1. **Cold coverage** — the first run simulates every enumerated point
   (no warm rows in an empty cache).
2. **Incrementality** — the extended re-run simulates *only* the added
   points; every original point is a warm cache hit, verified both from
   the runs' own warm/cold summary lines and from the store's
   ``repro cache stats --json`` counters.
3. **Stability** — the metric rows of the common points are identical
   across the two runs (warm rows are transparent stand-ins).

Each run is a separate subprocess, so the warm re-run demonstrates the
*cross-process* cache.  Timings and counters land in
``benchmarks/out/BENCH_grid.json`` — the artifact the CI grid-smoke job
uploads.

Usage::

    python scripts/grid_smoke.py [--scale 0.01]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT_DIR = REPO / "benchmarks" / "out"

BASE_AXES = ["--axis", "policy=preferred,proportional",
             "--axis", "spill_probability=0.0,0.1"]
EXTENDED_AXES = ["--axis", "policy=preferred,proportional,geographic",
                 "--axis", "spill_probability=0.0,0.1"]


def run_grid(cache_dir: str, scale: float, axes: list) -> tuple[float, dict, str]:
    """One ``repro grid run`` subprocess; returns (seconds, rows, summary)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE_DIR"] = cache_dir
    env.pop("REPRO_CACHE", None)  # the smoke must exercise the cache
    command = [sys.executable, "-m", "repro", "grid", "run",
               "--base", "EU1-FTTH", "--scale", str(scale)] + axes
    started = time.perf_counter()
    proc = subprocess.run(command, env=env, cwd=REPO, text=True,
                          capture_output=True, check=True)
    elapsed = time.perf_counter() - started
    rows = {}
    summary = ""
    for line in proc.stdout.splitlines():
        stripped = line.strip()
        if stripped.startswith("grid:"):
            summary = stripped
        elif stripped and not stripped.startswith("point"):
            label, *cells = stripped.split()
            rows[label] = cells
    if not summary:
        raise SystemExit("no 'grid:' summary line in grid run output")
    return elapsed, rows, summary


def parse_summary(summary: str) -> tuple[int, int, int]:
    """``grid: N points (W warm, C simulated)`` -> (N, W, C)."""
    words = summary.replace("(", " ").replace(",", " ").split()
    return int(words[1]), int(words[3]), int(words[5])


def cache_stats(cache_dir: str) -> dict:
    """The store's ``stats --json`` document, from a subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE_DIR"] = cache_dir
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "cache", "stats", "--json"],
        env=env, cwd=REPO, text=True, capture_output=True, check=True,
    )
    return json.loads(proc.stdout)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.01)
    args = parser.parse_args()

    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-grid-smoke-") as cache_dir:
        print(f"cache: {cache_dir}")
        cold_s, cold_rows, cold_summary = run_grid(cache_dir, args.scale,
                                                   BASE_AXES)
        print(f"cold:     {cold_s:6.2f}s  {cold_summary}")
        points, warm, simulated = parse_summary(cold_summary)
        if (points, warm, simulated) != (4, 0, 4):
            failures.append(f"cold run expected 4 points/0 warm/4 simulated, "
                            f"got {cold_summary!r}")

        stats_before = cache_stats(cache_dir)["lifetime"]["stages"]

        warm_s, warm_rows, warm_summary = run_grid(cache_dir, args.scale,
                                                   EXTENDED_AXES)
        print(f"extended: {warm_s:6.2f}s  {warm_summary}")
        points, warm, simulated = parse_summary(warm_summary)
        added = 2  # one new policy value x two spill values
        if (points, warm, simulated) != (6, 4, added):
            failures.append(f"extended run expected 6 points/4 warm/2 "
                            f"simulated, got {warm_summary!r}")

        stats_after = cache_stats(cache_dir)["lifetime"]["stages"]

    for label, cells in cold_rows.items():
        if warm_rows.get(label) != cells:
            failures.append(f"common point {label!r} changed across runs: "
                            f"{cells} -> {warm_rows.get(label)}")

    metrics_before = stats_before.get("whatif/metrics", {})
    metrics_after = stats_after.get("whatif/metrics", {})
    new_puts = metrics_after.get("puts", 0) - metrics_before.get("puts", 0)
    new_hits = metrics_after.get("hits", 0) - metrics_before.get("hits", 0)
    if new_puts != added:
        failures.append(f"extended run wrote {new_puts} metric rows, "
                        f"expected exactly the {added} added points")
    if new_hits < 4:
        failures.append(f"extended run recorded {new_hits} metric-row hits, "
                        f"expected >= 4 (the common points)")

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    report = {
        "scale": args.scale,
        "cold_seconds": round(cold_s, 3),
        "extended_seconds": round(warm_s, 3),
        "cold_summary": cold_summary,
        "extended_summary": warm_summary,
        "added_points_simulated": new_puts,
        "common_point_hits": new_hits,
        "rows_identical": not any("changed across runs" in f
                                  for f in failures),
        "stages_after": stats_after,
    }
    out_path = OUT_DIR / "BENCH_grid.json"
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote {out_path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("grid smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
