#!/usr/bin/env bash
# Kernel-parity check: the full study report must be byte-identical under
# REPRO_KERNELS=python and REPRO_KERNELS=numpy.
#
# Runs `repro study --full --digests` once per backend (cache off, so
# both runs really execute) and diffs the complete output — every table,
# every figure, and the per-dataset content digests.  Any drift between
# the Python spec and the columnar kernels fails the job.
#
# Usage: scripts/kernel_parity.sh [scale] [landmarks]
set -euo pipefail

SCALE="${1:-0.01}"
LANDMARKS="${2:-60}"
OUT_DIR="benchmarks/out"
mkdir -p "$OUT_DIR"

export REPRO_CACHE=off
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

for backend in python numpy; do
    echo "== repro study (kernels=$backend, scale=$SCALE, landmarks=$LANDMARKS) =="
    python -m repro study --scale "$SCALE" --landmarks "$LANDMARKS" \
        --full --digests --kernels "$backend" \
        > "$OUT_DIR/study_kernels_${backend}.txt"
done

if diff -u "$OUT_DIR/study_kernels_python.txt" "$OUT_DIR/study_kernels_numpy.txt"; then
    echo "kernel parity OK: study output byte-identical on both backends"
else
    echo "kernel parity FAILED: python and numpy backends disagree" >&2
    exit 1
fi
