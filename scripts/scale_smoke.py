#!/usr/bin/env python3
"""Sharded scale-out smoke test.

Runs the paper study monolithically and sharded (``repro study
--sharded`` on the process backend) in *separate subprocesses* and
asserts the scale-out layer's guarantees:

1. **Byte parity** — the sharded run's stdout (summary report plus
   ``--digests`` lines) is byte-for-byte identical to the monolithic
   batch run at every worker count.
2. **Scale-out wins** — on a machine with at least two cores, the best
   sharded process-backend run at ≥2 workers beats the monolithic
   wall-clock.  On single-core runners the timing assertion is skipped
   (recorded as ``speedup_checked: false``) — sharding there pays pickle
   and fork overhead with nothing to parallelise onto.
3. **No leaks** — each child asserts every shared-memory segment is
   unlinked before it exits (``repro.shard.shm.live_segments``), so a
   crash-path regression fails the smoke run, not a later tenant of the
   machine.

Throughput (flows/sec), per-worker wall-clock and the serialized payload
bytes the shm transport avoids land in ``benchmarks/out/BENCH_scale.json``
for the CI artifact upload.

Usage::

    python scripts/scale_smoke.py [--scale 0.1] [--workers 1,2,4]

The harness re-invokes itself with ``--child``: the child redirects
stdout to a file, runs ``repro.cli.main`` in-process, and reports
``{elapsed_s, max_rss_kb, exit_code}`` as JSON — everything the parent
compares.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT_DIR = REPO / "benchmarks" / "out"

LANDMARKS = 60  # keep CBG calibration cheap; irrelevant to sharding


def child_main(report_path: str, stdout_path: str, argv: list) -> int:
    """Run one ``repro`` CLI invocation in-process and report on it."""
    import resource

    from repro.cli import main
    from repro.shard.shm import live_segments

    start = time.perf_counter()
    with open(stdout_path, "w", encoding="utf-8") as sink:
        saved = sys.stdout
        sys.stdout = sink
        try:
            code = main(argv)
        finally:
            sys.stdout = saved
    leaked = live_segments()
    if leaked:
        print(f"leaked shared-memory segments: {leaked}", file=sys.stderr)
        code = code or 3
    payload = {
        "elapsed_s": time.perf_counter() - start,
        "max_rss_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
        "exit_code": int(code or 0),
    }
    Path(report_path).write_text(json.dumps(payload) + "\n", encoding="utf-8")
    return int(code or 0)


def run_child(argv: list, workdir: str, tag: str, extra_env: dict = {}) -> dict:
    """One CLI run in a fresh subprocess; returns the child's report."""
    report_path = os.path.join(workdir, f"report-{tag}.json")
    stdout_path = os.path.join(workdir, f"stdout-{tag}.txt")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE"] = "off"  # smoke times real compute, byte-compares real runs
    env.update(extra_env)
    command = [sys.executable, str(Path(__file__).resolve()), "--child",
               report_path, stdout_path, "--", *argv]
    proc = subprocess.run(command, env=env, cwd=REPO, text=True,
                          capture_output=True)
    if proc.returncode != 0:
        raise SystemExit(
            f"child {argv} exited {proc.returncode}:\n{proc.stderr}")
    report = json.loads(Path(report_path).read_text(encoding="utf-8"))
    report["stdout"] = Path(stdout_path).read_text(encoding="utf-8")
    return report


def study_argv(scale: float, sharded: bool = False) -> list:
    argv = ["study", "--scale", str(scale), "--landmarks", str(LANDMARKS),
            "--digests"]
    if sharded:
        argv += ["--sharded"]
    return argv


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "--child":
        split = sys.argv.index("--")
        return child_main(sys.argv[2], sys.argv[3], sys.argv[split + 1:])

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--workers", default="1,2,4",
                        help="comma-separated process-pool sizes to sweep")
    args = parser.parse_args()
    worker_counts = [int(w) for w in args.workers.split(",") if w.strip()]

    failures: list = []
    cores = os.cpu_count() or 1
    report: dict = {"scale": args.scale, "cpu_count": cores,
                    "workers": worker_counts, "sharded": {}}

    with tempfile.TemporaryDirectory(prefix="repro-scale-smoke-") as work:
        monolithic = run_child(study_argv(args.scale), work, "monolithic")
        report["monolithic_s"] = round(monolithic["elapsed_s"], 3)

        flows = None
        for workers in worker_counts:
            stats_path = os.path.join(work, f"shard_stats_{workers}.json")
            sharded = run_child(
                study_argv(args.scale, sharded=True), work, f"w{workers}",
                extra_env={
                    "REPRO_EXECUTOR": "process",
                    "REPRO_WORKERS": str(workers),
                    "REPRO_SHARD_STATS": stats_path,
                })
            identical = sharded["stdout"] == monolithic["stdout"]
            if not identical:
                failures.append(
                    f"--sharded stdout at {workers} workers differs from "
                    f"monolithic at scale {args.scale}")
            stats = json.loads(Path(stats_path).read_text(encoding="utf-8"))
            if flows is None:
                flows = sum(d["flows"] for d in stats["datasets"].values())
            report["sharded"][str(workers)] = {
                "elapsed_s": round(sharded["elapsed_s"], 3),
                "flows_per_sec": round(flows / sharded["elapsed_s"], 1),
                "parity": identical,
                "max_rss_kb": sharded["max_rss_kb"],
                "dispatch_bytes": stats["dispatch_bytes"],
                "result_bytes": stats["result_bytes"],
            }

        report["flows"] = flows
        report["monolithic_flows_per_sec"] = round(
            flows / monolithic["elapsed_s"], 1)

        multi = [report["sharded"][str(w)]["elapsed_s"]
                 for w in worker_counts if w >= 2]
        report["speedup_checked"] = cores >= 2 and bool(multi)
        if report["speedup_checked"]:
            best = min(multi)
            report["best_multiworker_s"] = best
            report["speedup_vs_monolithic"] = round(
                monolithic["elapsed_s"] / best, 3)
            if best >= monolithic["elapsed_s"]:
                failures.append(
                    f"best sharded multi-worker run ({best:.3f}s) does not "
                    f"beat the monolithic run "
                    f"({monolithic['elapsed_s']:.3f}s) on {cores} cores")

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    bench_path = OUT_DIR / "BENCH_scale.json"
    doc: dict = {}
    if bench_path.exists():
        try:
            doc = json.loads(bench_path.read_text(encoding="utf-8"))
        except ValueError:
            doc = {}
    doc["smoke"] = report
    bench_path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")
    print(f"wrote {bench_path}")
    print(json.dumps(report, indent=2, sort_keys=True))

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("scale smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
