#!/usr/bin/env python3
"""Streaming ingestion smoke test.

Runs the paper study through both ingestion paths in *separate
subprocesses* (so each run's peak RSS is its own, unpolluted by the
other) and asserts the streaming layer's two guarantees:

1. **Byte parity** — ``repro study --stream --digests`` produces
   byte-for-byte identical stdout to the batch path at scale 0.05, at
   two different window sizes (one hour and 15 minutes).
2. **Bounded memory** — at scale 0.1 the streamed run's peak RSS
   (``resource.getrusage`` in the child) stays below the
   full-materialisation batch run's peak RSS *and* under a fixed
   absolute ceiling, so the bound cannot silently erode even if the
   batch baseline bloats.

Throughput (flows/sec) and the per-dataset peak-RSS trajectory
(``REPRO_STREAM_STATS``) land in ``benchmarks/out/BENCH_stream.json``
for the CI artifact upload.

Usage::

    python scripts/stream_smoke.py [--parity-scale 0.05] [--rss-scale 0.1]

The harness re-invokes itself with ``--child``: the child redirects
stdout to a file, runs ``repro.cli.main`` in-process, and reports
``{elapsed_s, max_rss_kb, exit_code}`` as JSON — everything the parent
compares.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT_DIR = REPO / "benchmarks" / "out"

#: Absolute ceiling on the streamed scale-0.1 study's peak RSS.  The
#: run sits around 170 MB on CI's runners (interpreter + numpy + worlds
#: + bounded accumulators); the batch run materialises every flow and
#: lands well above 250 MB.  Generous headroom, but still a hard stop
#: against unbounded-buffering regressions.
STREAM_RSS_CEILING_KB = 240_000

LANDMARKS = 60  # keep CBG calibration cheap; irrelevant to ingestion


def child_main(report_path: str, stdout_path: str, argv: list) -> int:
    """Run one ``repro`` CLI invocation in-process and report on it."""
    import resource

    from repro.cli import main

    start = time.perf_counter()
    with open(stdout_path, "w", encoding="utf-8") as sink:
        saved = sys.stdout
        sys.stdout = sink
        try:
            code = main(argv)
        finally:
            sys.stdout = saved
    payload = {
        "elapsed_s": time.perf_counter() - start,
        "max_rss_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
        "exit_code": int(code or 0),
    }
    Path(report_path).write_text(json.dumps(payload) + "\n", encoding="utf-8")
    return int(code or 0)


def run_child(argv: list, workdir: str, extra_env: dict = {}) -> dict:
    """One CLI run in a fresh subprocess; returns the child's report."""
    report_path = os.path.join(workdir, "report.json")
    stdout_path = os.path.join(workdir, "stdout.txt")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE"] = "off"  # smoke times real compute, byte-compares real runs
    env.update(extra_env)
    command = [sys.executable, str(Path(__file__).resolve()), "--child",
               report_path, stdout_path, "--", *argv]
    proc = subprocess.run(command, env=env, cwd=REPO, text=True,
                          capture_output=True)
    if proc.returncode != 0:
        raise SystemExit(
            f"child {argv} exited {proc.returncode}:\n{proc.stderr}")
    report = json.loads(Path(report_path).read_text(encoding="utf-8"))
    report["stdout"] = Path(stdout_path).read_text(encoding="utf-8")
    return report


def study_argv(scale: float, stream: bool = False,
               window_s: float = 3600.0) -> list:
    argv = ["study", "--scale", str(scale), "--landmarks", str(LANDMARKS),
            "--digests"]
    if stream:
        argv += ["--stream", "--window-s", str(window_s)]
    return argv


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "--child":
        split = sys.argv.index("--")
        return child_main(sys.argv[2], sys.argv[3], sys.argv[split + 1:])

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--parity-scale", type=float, default=0.05)
    parser.add_argument("--rss-scale", type=float, default=0.1)
    args = parser.parse_args()

    failures: list = []
    report: dict = {"parity_scale": args.parity_scale,
                    "rss_scale": args.rss_scale}

    with tempfile.TemporaryDirectory(prefix="repro-stream-smoke-") as work:
        # ---- byte parity: batch vs two window sizes, separate processes
        batch = run_child(study_argv(args.parity_scale), work)
        for window_s in (3600.0, 900.0):
            streamed = run_child(
                study_argv(args.parity_scale, stream=True, window_s=window_s),
                work)
            key = f"parity_window_{int(window_s)}"
            identical = streamed["stdout"] == batch["stdout"]
            report[key] = identical
            if not identical:
                failures.append(
                    f"--stream --window-s {window_s} stdout differs from "
                    f"batch at scale {args.parity_scale}")
        report["parity_batch_s"] = round(batch["elapsed_s"], 3)

        # ---- bounded memory: scale 0.1, RSS head-to-head
        stats_path = os.path.join(work, "stream_stats.json")
        big_batch = run_child(study_argv(args.rss_scale), work)
        big_stream = run_child(
            study_argv(args.rss_scale, stream=True), work,
            extra_env={"REPRO_STREAM_STATS": stats_path})
        if big_stream["stdout"] != big_batch["stdout"]:
            failures.append(f"scale {args.rss_scale} stream stdout differs "
                            "from batch")
        stream_stats = json.loads(Path(stats_path).read_text(encoding="utf-8"))

        batch_rss = big_batch["max_rss_kb"]
        stream_rss = big_stream["max_rss_kb"]
        report["batch_max_rss_kb"] = batch_rss
        report["stream_max_rss_kb"] = stream_rss
        report["stream_rss_ceiling_kb"] = STREAM_RSS_CEILING_KB
        if stream_rss >= batch_rss:
            failures.append(
                f"streamed peak RSS {stream_rss} KB >= batch "
                f"{batch_rss} KB — streaming is not bounding memory")
        if stream_rss > STREAM_RSS_CEILING_KB:
            failures.append(
                f"streamed peak RSS {stream_rss} KB over the fixed "
                f"ceiling {STREAM_RSS_CEILING_KB} KB")

        flows = sum(d["flows"] for d in stream_stats["datasets"].values())
        report["flows"] = flows
        report["stream_flows_per_sec"] = round(
            flows / big_stream["elapsed_s"], 1)
        report["batch_flows_per_sec"] = round(
            flows / big_batch["elapsed_s"], 1)
        report["rss_trajectory_kb"] = {
            name: d["rss_after_kb"]
            for name, d in stream_stats["datasets"].items()}
        report["late_records"] = sum(
            d["late_records"] for d in stream_stats["datasets"].values())
        if report["late_records"]:
            failures.append(f"{report['late_records']} late records in a "
                            "clean simulated stream")

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    bench_path = OUT_DIR / "BENCH_stream.json"
    doc: dict = {}
    if bench_path.exists():
        try:
            doc = json.loads(bench_path.read_text(encoding="utf-8"))
        except ValueError:
            doc = {}
    doc["smoke"] = report
    bench_path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")
    print(f"wrote {bench_path}")
    print(json.dumps(report, indent=2, sort_keys=True))

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("stream smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
