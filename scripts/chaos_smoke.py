#!/usr/bin/env python3
"""Deterministic chaos smoke test.

Runs the paper study under an aggressive fixed-seed fault plan and
asserts the fault layer's three guarantees:

1. **Survival** — the study completes under probe loss, RTT timeouts,
   worker crashes, transient task failures, artifact corruption, and
   garbled log lines, and says so in a ``DEGRADATION REPORT``.
2. **Determinism** — two consecutive warm runs under the *same* plan
   produce byte-identical stdout (every injected fault is a pure
   function of ``(seed, site label)``, never of timing or schedule).
3. **Transparency** — an inert plan (all rates zero) is
   indistinguishable from running with no plan at all: identical
   output, including the per-dataset content digests.

Each run is a separate subprocess so the warm runs also exercise
quarantine-and-recompute against the on-disk artifact cache: with
``artifact_corrupt`` at 1.0 every cache read comes back truncated, is
quarantined, and is transparently recomputed.  The parsed degradation
counters land in ``benchmarks/out/degradation_report.json``.

Usage::

    python scripts/chaos_smoke.py [--scale 0.01]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT_DIR = REPO / "benchmarks" / "out"

CHAOS_PLAN = json.dumps({
    "seed": 42,
    "probe_loss": 0.1,
    "probe_timeout": 0.1,
    "task_transient": 0.1,
    "task_crash": 0.05,
    "artifact_corrupt": 1.0,
    "line_garble": 0.02,
})
INERT_PLAN = json.dumps({"seed": 99})


def run_study(scale: float, faults: str | None, cache_dir: str | None) -> str:
    """One ``repro study --digests`` subprocess; returns its stdout."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    if cache_dir is None:
        env["REPRO_CACHE"] = "off"
    else:
        env["REPRO_CACHE_DIR"] = cache_dir
        env.pop("REPRO_CACHE", None)
    command = [sys.executable, "-m", "repro", "study",
               "--scale", str(scale), "--digests"]
    if faults is not None:
        command += ["--faults", faults]
    proc = subprocess.run(command, env=env, cwd=REPO, text=True,
                          capture_output=True, check=True)
    return proc.stdout


def parse_degradation(stdout: str) -> dict:
    """The ``TOTAL`` row of the degradation table as ``{counter: value}``."""
    lines = stdout.splitlines()
    try:
        start = next(i for i, line in enumerate(lines)
                     if "DEGRADATION REPORT" in line)
    except StopIteration:
        raise SystemExit("no DEGRADATION REPORT in chaos-run output")
    header = next(line.split() for line in lines[start:]
                  if line.strip().startswith("stage"))
    total = next(line.split() for line in lines[start:]
                 if line.strip().startswith("TOTAL"))
    return dict(zip(header[1:], (int(v) for v in total[1:])))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.01)
    args = parser.parse_args()

    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-chaos-smoke-") as cache_dir:
        # Cold run: a fresh plan owns a fresh cache namespace, so every
        # stage recomputes under injected probe/task/line faults.
        cold = run_study(args.scale, CHAOS_PLAN, cache_dir)
        cold_tally = parse_degradation(cold)
        print(f"cold chaos run: {cold_tally}")
        if cold_tally.get("probes_lost", 0) < 1:
            failures.append(f"cold run lost no probes: {cold_tally}")
        if cold_tally.get("retried", 0) < 1:
            failures.append(f"cold run retried nothing: {cold_tally}")

        # Warm runs: every cache read is corrupted, quarantined, and
        # recomputed — and the two runs must still agree byte-for-byte.
        warm_a = run_study(args.scale, CHAOS_PLAN, cache_dir)
        warm_b = run_study(args.scale, CHAOS_PLAN, cache_dir)
        warm_tally = parse_degradation(warm_a)
        print(f"warm chaos run: {warm_tally}")
        if warm_tally.get("quarantined", 0) < 1:
            failures.append(f"warm run quarantined nothing: {warm_tally}")
        if warm_a != warm_b:
            failures.append("consecutive warm chaos runs are not "
                            "byte-identical")

    # An all-zero plan must be invisible: same bytes as no plan at all.
    clean = run_study(args.scale, None, None)
    inert = run_study(args.scale, INERT_PLAN, None)
    print(f"clean vs inert-plan output identical: {clean == inert}")
    if clean != inert:
        failures.append("inert fault plan changed the study output")

    digests = sorted(line for line in cold.splitlines()
                     if line.startswith("digest "))
    if digests != sorted(line for line in clean.splitlines()
                         if line.startswith("digest ")):
        failures.append("chaos run changed dataset content digests "
                        "(faults must not touch the simulated traces)")

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    report = {
        "scale": args.scale,
        "plan": json.loads(CHAOS_PLAN),
        "cold": cold_tally,
        "warm": warm_tally,
        "warm_runs_identical": warm_a == warm_b,
        "inert_plan_transparent": clean == inert,
        "digests": dict(line.split()[1:] for line in digests),
    }
    out_path = OUT_DIR / "degradation_report.json"
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote {out_path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("chaos smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
