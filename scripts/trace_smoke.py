#!/usr/bin/env python3
"""Observability smoke test.

Runs the paper study with tracing on and asserts the tracing layer's
three guarantees:

1. **Coverage** — a traced ``repro study`` writes a ``trace_<run>.jsonl``
   whose root ``cli/study`` span accounts for the run's wall time, and
   whose Chrome export is valid ``trace_event`` JSON containing at least
   one worker task span nested under an ``exec/map`` span.
2. **Consistency** — the trace's ``cache.*`` counters agree exactly with
   the artifact store's ``events.jsonl`` ledger for the same run (the
   counters travel back from workers through task captures; the ledger
   is written where the event happens — two independent paths, one
   truth).
3. **Transparency** — ``REPRO_TRACE=off`` produces byte-identical study
   stdout (same per-dataset content digests) and writes no trace file.

The parsed check results land in ``benchmarks/out/trace_report.json``;
the trace files themselves stay in ``benchmarks/out/traces/`` for the CI
artifact upload.

Usage::

    python scripts/trace_smoke.py [--scale 0.01]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT_DIR = REPO / "benchmarks" / "out"
TRACE_DIR = OUT_DIR / "traces"


def run_study(scale: float, cache_dir: str, trace: bool,
              backend: str = "serial") -> tuple[str, float]:
    """One ``repro study --digests`` subprocess; returns (stdout, wall_s)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE_DIR"] = cache_dir
    env.pop("REPRO_CACHE", None)
    env["REPRO_EXECUTOR"] = backend
    env["REPRO_EXECUTOR_WORKERS"] = "4"
    if trace:
        env.pop("REPRO_TRACE", None)
    else:
        env["REPRO_TRACE"] = "off"
    command = [sys.executable, "-m", "repro", "study",
               "--scale", str(scale), "--digests"]
    if trace:
        command += ["--trace", str(TRACE_DIR)]
    start = time.perf_counter()
    proc = subprocess.run(command, env=env, cwd=REPO, text=True,
                          capture_output=True, check=True)
    return proc.stdout, time.perf_counter() - start


def run_trace_cli(*argv: str) -> str:
    """One ``repro trace ...`` subprocess; returns its stdout."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run([sys.executable, "-m", "repro", "trace", *argv],
                          env=env, cwd=REPO, text=True,
                          capture_output=True, check=True)
    return proc.stdout


def read_trace(path: Path) -> tuple[list[dict], dict]:
    """The span entries and metrics snapshot of one trace JSONL."""
    spans: list[dict] = []
    metrics: dict = {}
    for line in path.read_text(encoding="utf-8").splitlines():
        entry = json.loads(line)
        if entry.get("type") == "span":
            spans.append(entry)
        elif entry.get("type") == "metrics":
            metrics = entry.get("data", {})
    return spans, metrics


def counter_total(metrics: dict, name: str) -> int:
    """One counter summed over every label set in a metrics snapshot."""
    return int(sum(
        value for flat, value in metrics.get("counters", {}).items()
        if flat == name or flat.startswith(name + "{")
    ))


def ledger_tally(cache_dir: str, skip_lines: int = 0) -> dict[str, int]:
    """Event → count over the ledger, skipping the first ``skip_lines``."""
    tally: dict[str, int] = {}
    ledger = Path(cache_dir) / "events.jsonl"
    if not ledger.is_file():
        return tally
    for line in ledger.read_text(encoding="utf-8").splitlines()[skip_lines:]:
        try:
            event = json.loads(line).get("event", "")
        except ValueError:
            continue
        tally[event] = tally.get(event, 0) + 1
    return tally


def ledger_lines(cache_dir: str) -> int:
    ledger = Path(cache_dir) / "events.jsonl"
    if not ledger.is_file():
        return 0
    return len(ledger.read_text(encoding="utf-8").splitlines())


def latest_trace() -> Path:
    traces = sorted(TRACE_DIR.glob("trace_*.jsonl"),
                    key=lambda p: p.stat().st_mtime)
    if not traces:
        raise SystemExit(f"no trace files in {TRACE_DIR}")
    return traces[-1]


def digests(stdout: str) -> list[str]:
    return sorted(line for line in stdout.splitlines()
                  if line.startswith("digest "))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.01)
    args = parser.parse_args()

    TRACE_DIR.mkdir(parents=True, exist_ok=True)
    for stale in TRACE_DIR.glob("trace_*.jsonl"):
        stale.unlink()

    failures: list[str] = []
    report: dict = {"scale": args.scale}
    with tempfile.TemporaryDirectory(prefix="repro-trace-smoke-") as cache_dir:
        # ---- cold traced run (process backend: real worker propagation)
        mark = ledger_lines(cache_dir)
        cold_out, cold_wall = run_study(args.scale, cache_dir, trace=True,
                                        backend="process")
        cold_trace = latest_trace()
        spans, metrics = read_trace(cold_trace)
        cold_ledger = ledger_tally(cache_dir, skip_lines=mark)

        roots = [s for s in spans if s.get("parent") is None]
        if len(roots) != 1 or roots[0]["name"] != "cli/study":
            failures.append(f"expected one cli/study root span, got "
                            f"{[r['name'] for r in roots]}")
        else:
            root_s = roots[0]["end"] - roots[0]["start"]
            report["root_inclusive_s"] = round(root_s, 3)
            report["subprocess_wall_s"] = round(cold_wall, 3)
            # The root span covers everything after arg parsing; the
            # subprocess wall additionally pays interpreter startup, so
            # the root must fit inside it but still account for the bulk.
            if not 0 < root_s <= cold_wall:
                failures.append(
                    f"root span {root_s:.3f}s outside wall {cold_wall:.3f}s")
            if root_s < 0.25 * cold_wall:
                failures.append(
                    f"root span {root_s:.3f}s covers <25% of wall "
                    f"{cold_wall:.3f}s — instrumentation hole?")

        worker_spans = [s for s in spans
                        if s["name"].startswith("task:") and "." in s["id"]]
        report["worker_spans"] = len(worker_spans)
        if not worker_spans:
            failures.append("no worker task spans came back from the pool")
        map_ids = {s["id"] for s in spans if s["name"] == "exec/map"}
        if not any(s.get("parent") in map_ids for s in worker_spans):
            failures.append("worker task spans are not nested under exec/map")

        # ---- counters vs ledger (cold)
        for event, counter in (("hit", "cache.hit"), ("miss", "cache.miss"),
                               ("put", "cache.put")):
            in_trace = counter_total(metrics, counter)
            in_ledger = cold_ledger.get(event, 0)
            report[f"cold_{counter}"] = in_trace
            report[f"cold_ledger_{event}"] = in_ledger
            if in_trace != in_ledger:
                failures.append(
                    f"cold run: trace {counter}={in_trace} but ledger "
                    f"recorded {in_ledger} '{event}' events")

        # ---- warm traced run (serial): counters must match again
        mark = ledger_lines(cache_dir)
        warm_out, _ = run_study(args.scale, cache_dir, trace=True)
        _, warm_metrics = read_trace(latest_trace())
        warm_ledger = ledger_tally(cache_dir, skip_lines=mark)
        warm_hits = counter_total(warm_metrics, "cache.hit")
        report["warm_cache_hit"] = warm_hits
        report["warm_ledger_hit"] = warm_ledger.get("hit", 0)
        if warm_hits != warm_ledger.get("hit", 0):
            failures.append(
                f"warm run: trace cache.hit={warm_hits} but ledger "
                f"recorded {warm_ledger.get('hit', 0)} hits")
        if warm_hits < 1:
            failures.append("warm run served nothing from cache")

        # ---- REPRO_TRACE=off: byte-identical stdout, no trace file
        before = len(list(TRACE_DIR.glob("trace_*.jsonl")))
        off_out, _ = run_study(args.scale, cache_dir, trace=False)
        after = len(list(TRACE_DIR.glob("trace_*.jsonl")))
        report["off_run_identical"] = off_out == warm_out
        if off_out != warm_out:
            failures.append("REPRO_TRACE=off changed the study stdout")
        if digests(off_out) != digests(cold_out):
            failures.append("REPRO_TRACE=off changed dataset digests")
        if after != before:
            failures.append("REPRO_TRACE=off still wrote a trace file")

    # ---- the trace CLI views over the cold trace
    summary = run_trace_cli("summary", str(cold_trace))
    if "cli/study" not in summary:
        failures.append("'repro trace summary' does not show the root span")
    chrome_path = TRACE_DIR / "chrome_study.json"
    run_trace_cli("export", str(cold_trace), "--format", "chrome",
                  "--out", str(chrome_path))
    chrome = json.loads(chrome_path.read_text(encoding="utf-8"))
    events = [e for e in chrome.get("traceEvents", []) if e.get("ph") == "X"]
    tids = {e["tid"] for e in events}
    report["chrome_events"] = len(events)
    report["chrome_tracks"] = len(tids)
    if not any(e["name"].startswith("task:") for e in events):
        failures.append("Chrome export has no worker task events")
    if len(tids) < 2:
        failures.append("Chrome export collapses workers onto one track")

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    out_path = OUT_DIR / "trace_report.json"
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote {out_path}")
    print(json.dumps(report, indent=2, sort_keys=True))

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("trace smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
